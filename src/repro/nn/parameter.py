"""Learnable parameter with gradient storage and ready-hooks."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

# A hook receives the parameter whose gradient just became available.
GradHook = Callable[["Parameter"], None]


class RemovableHandle:
    """Handle returned by :meth:`Parameter.register_hook`.

    Mirrors ``torch.utils.hooks.RemovableHandle``: calling :meth:`remove`
    detaches exactly the hook this handle was issued for (idempotently),
    leaving hooks registered by other subsystems in place — which is why
    the bucketed reducer uses handles instead of ``clear_hooks``.
    """

    def __init__(self, hooks: List[GradHook], hook: GradHook):
        self._hooks = hooks
        self._hook = hook

    def remove(self) -> None:
        """Detach the hook; safe to call more than once."""
        try:
            self._hooks.remove(self._hook)
        except ValueError:
            pass


class Parameter:
    """A learnable tensor: value, gradient, and gradient-ready hooks.

    Attributes:
        data: the parameter value (float64 numpy array).
        grad: accumulated gradient for the current step, or ``None`` before
            the first backward touches it.
        name: dotted path assigned by the owning model (e.g.
            ``features.3.weight``); set by ``Module.named_parameters``.

    Gradient storage comes in two modes:

    - **legacy**: ``accumulate_grad`` allocates a fresh array per step (the
      first call copies, later calls add);
    - **arena**: a preallocated zero-copy view into a fused per-worker
      buffer is attached with :meth:`attach_grad_slot`
      (see :class:`repro.perf.arena.GradientArena`); accumulation then
      writes into the fused buffer in place and ``zero_grad`` merely marks
      the slot stale — no per-step allocation at all. Both modes produce
      bit-identical gradient values.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.name = name
        self._grad: Optional[np.ndarray] = None
        self._grad_slot: Optional[np.ndarray] = None
        self._slot_written = False
        self._hooks: List[GradHook] = []

    @property
    def grad(self) -> Optional[np.ndarray]:
        if self._grad_slot is not None:
            return self._grad_slot if self._slot_written else None
        return self._grad

    @grad.setter
    def grad(self, value: Optional[np.ndarray]) -> None:
        if self._grad_slot is not None:
            if value is None:
                self._slot_written = False
            else:
                np.copyto(self._grad_slot, value)
                self._slot_written = True
        else:
            self._grad = value

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.data.size)

    def register_hook(self, hook: GradHook) -> RemovableHandle:
        """Register a callback fired when this parameter's grad is ready.

        This mirrors ``torch.Tensor.register_hook`` as used by the paper's
        ACP-SGD prototype (§IV-C): distributed optimizers use it to launch
        compression/communication as soon as back-propagation produces each
        gradient (wait-free back-propagation). Returns a handle whose
        ``remove()`` detaches just this hook.
        """
        self._hooks.append(hook)
        return RemovableHandle(self._hooks, hook)

    def clear_hooks(self) -> None:
        """Remove all registered hooks."""
        self._hooks.clear()

    def attach_grad_slot(self, slot: np.ndarray) -> None:
        """Route gradient accumulation into a preallocated buffer view.

        ``slot`` must match the parameter's shape; it is typically a view
        into a worker's fused arena slab. Attaching marks the slot stale
        (as after ``zero_grad``); any legacy gradient is dropped.
        """
        if slot.shape != self.data.shape:
            raise ValueError(
                f"grad slot shape {slot.shape} != parameter shape "
                f"{self.data.shape}"
                + (f" for {self.name!r}" if self.name else "")
            )
        self._grad_slot = slot
        self._slot_written = False
        self._grad = None

    def detach_grad_slot(self) -> None:
        """Return to legacy per-step gradient allocation."""
        self._grad_slot = None
        self._slot_written = False

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` and fire ready-hooks.

        Layers call this exactly once per backward pass per parameter, so the
        hook-firing point is "this parameter's gradient for the step is
        complete" — the WFBP readiness event.
        """
        if grad.shape != self.data.shape:
            raise ValueError(
                f"grad shape {grad.shape} != parameter shape {self.data.shape}"
                + (f" for {self.name!r}" if self.name else "")
            )
        if self._grad_slot is not None:
            # Arena mode: first write overwrites whatever stale data the
            # slot held (np.copyto casts like astype), later writes add in
            # place — bit-identical to the legacy copy-then-add.
            if self._slot_written:
                self._grad_slot += grad
            else:
                np.copyto(self._grad_slot, grad)
                self._slot_written = True
        elif self._grad is None:
            # order="C": layer backwards may hand over F-ordered arrays
            # (einsum/tensordot outputs); gradient storage must have one
            # canonical layout so BLAS-backed consumers (Power-SGD/ACP-SGD
            # matmuls) round identically whether the gradient lives here
            # or in a C-contiguous arena slot.
            self._grad = grad.astype(np.float64, order="C", copy=True)
        else:
            self._grad = self._grad + grad
        for hook in self._hooks:
            hook(self)

    def zero_grad(self) -> None:
        """Reset the gradient before the next backward pass.

        In arena mode this is allocation-free: the slot is marked stale and
        the next ``accumulate_grad`` overwrites it.
        """
        self._grad = None
        self._slot_written = False

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return f"Parameter({label}, shape={self.data.shape})"
