"""Learnable parameter with gradient storage and ready-hooks."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

# A hook receives the parameter whose gradient just became available.
GradHook = Callable[["Parameter"], None]


class Parameter:
    """A learnable tensor: value, gradient, and gradient-ready hooks.

    Attributes:
        data: the parameter value (float64 numpy array).
        grad: accumulated gradient for the current step, or ``None`` before
            the first backward touches it.
        name: dotted path assigned by the owning model (e.g.
            ``features.3.weight``); set by ``Module.named_parameters``.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._hooks: List[GradHook] = []

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.data.size)

    def register_hook(self, hook: GradHook) -> None:
        """Register a callback fired when this parameter's grad is ready.

        This mirrors ``torch.Tensor.register_hook`` as used by the paper's
        ACP-SGD prototype (§IV-C): distributed optimizers use it to launch
        compression/communication as soon as back-propagation produces each
        gradient (wait-free back-propagation).
        """
        self._hooks.append(hook)

    def clear_hooks(self) -> None:
        """Remove all registered hooks."""
        self._hooks.clear()

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` and fire ready-hooks.

        Layers call this exactly once per backward pass per parameter, so the
        hook-firing point is "this parameter's gradient for the step is
        complete" — the WFBP readiness event.
        """
        if grad.shape != self.data.shape:
            raise ValueError(
                f"grad shape {grad.shape} != parameter shape {self.data.shape}"
                + (f" for {self.name!r}" if self.name else "")
            )
        if self.grad is None:
            self.grad = grad.astype(np.float64, copy=True)
        else:
            self.grad = self.grad + grad
        for hook in self._hooks:
            hook(self)

    def zero_grad(self) -> None:
        """Reset the gradient before the next backward pass."""
        self.grad = None

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return f"Parameter({label}, shape={self.data.shape})"
