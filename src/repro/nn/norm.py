"""Normalization layers: BatchNorm2d and LayerNorm."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter


class BatchNorm2d(Module):
    """Batch normalization over NCHW inputs (per-channel statistics).

    Running statistics are plain arrays (not Parameters): they receive no
    gradient and are never communicated, matching DDP's treatment of
    BatchNorm buffers. gamma/beta are 1-D ("vector-shaped") parameters, which
    the compression layer leaves uncompressed per §IV-C of the paper.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.eps = eps
        self.momentum = momentum
        # When set (a list), training forwards append their (mean, var)
        # batch statistics here INSTEAD of updating the running buffers.
        # Parallel worker replicas record per-batch stats this way and the
        # trainer replays them onto the master model in rank order, so the
        # running buffers end up bit-identical to a sequential pass (the
        # batch statistics depend only on the batch, not on the buffers).
        self.stat_recorder: Optional[list] = None
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            if self.stat_recorder is not None:
                self.stat_recorder.append((mean, var))
            else:
                self.apply_batch_stats(mean, var)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.weight.data[None, :, None, None] * x_hat
            + self.bias.data[None, :, None, None]
        )
        if self.training:
            self._cache = (x_hat, inv_std, x)
        return out

    def apply_batch_stats(self, mean: np.ndarray, var: np.ndarray) -> None:
        """Fold one batch's statistics into the running buffers.

        The single update rule shared by the direct (sequential) path and
        the recorded-replay (parallel) path — keeping them one expression
        is what makes the two training modes bit-identical.
        """
        self.running_mean = (
            (1 - self.momentum) * self.running_mean + self.momentum * mean
        )
        self.running_var = (
            (1 - self.momentum) * self.running_var + self.momentum * var
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training mode)")
        x_hat, inv_std, x = self._cache
        m = x.shape[0] * x.shape[2] * x.shape[3]

        self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
        self.weight.accumulate_grad((grad_output * x_hat).sum(axis=(0, 2, 3)))

        gamma = self.weight.data[None, :, None, None]
        grad_xhat = grad_output * gamma
        sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (
            inv_std[None, :, None, None]
            * (grad_xhat - sum_grad / m - x_hat * sum_grad_xhat / m)
        )
        self._cache = None
        return grad_input


class LayerNorm(Module):
    """Layer normalization over the last dimension (transformer-style)."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        super().__init__()
        if normalized_dim < 1:
            raise ValueError(f"normalized_dim must be >= 1, got {normalized_dim}")
        self.weight = Parameter(np.ones(normalized_dim))
        self.bias = Parameter(np.zeros(normalized_dim))
        self.eps = eps
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.weight.data.shape[0]:
            raise ValueError(
                f"last dim {x.shape[-1]} != normalized_dim {self.weight.data.shape[0]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.weight.data * x_hat + self.bias.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        d = x_hat.shape[-1]
        axes = tuple(range(grad_output.ndim - 1))
        self.bias.accumulate_grad(grad_output.sum(axis=axes))
        self.weight.accumulate_grad((grad_output * x_hat).sum(axis=axes))

        grad_xhat = grad_output * self.weight.data
        sum_grad = grad_xhat.sum(axis=-1, keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=-1, keepdims=True)
        grad_input = inv_std * (grad_xhat - sum_grad / d - x_hat * sum_grad_xhat / d)
        self._cache = None
        return grad_input
