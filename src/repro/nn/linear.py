"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with ``W`` of shape (out, in).

    The weight layout matches ``torch.nn.Linear``, which matters for the
    compression reshaping rules: Power-SGD treats a Linear weight as an
    ``out x in`` gradient matrix directly.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"features must be >= 1, got in={in_features}, out={out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.weight.data.shape[1]:
            raise ValueError(
                f"input last dim {x.shape[-1]} != in_features "
                f"{self.weight.data.shape[1]}"
            )
        self._cache_input = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        # Collapse any leading batch dims for the weight gradient.
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        grad_input = grad_output @ self.weight.data
        if self.bias is not None:
            self.bias.accumulate_grad(flat_grad.sum(axis=0))
        self.weight.accumulate_grad(flat_grad.T @ flat_x)
        self._cache_input = None
        return grad_input
