"""Module containers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order.

    Backward runs in reverse order, so parameter gradient hooks fire from
    the last layer backwards — the readiness order WFBP schedules around.
    """

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def append(self, module: Module) -> "Sequential":
        """Add a module to the end of the chain."""
        self.layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output
