"""Elementwise activation layers."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_input = np.where(self._mask, grad_output, 0.0)
        self._mask = None
        return grad_input


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad_input = grad_output * (1.0 - self._out**2)
        self._out = None
        return grad_input


class GELU(Module):
    """Gaussian error linear unit (tanh approximation, as in BERT)."""

    _C = math.sqrt(2.0 / math.pi)

    def __init__(self) -> None:
        super().__init__()
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        inner = self._C * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech2 = 1.0 - tanh_inner**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        self._x = None
        return grad_output * grad
