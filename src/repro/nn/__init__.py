"""A from-scratch numpy neural-network framework.

This plays the role PyTorch plays in the paper: it provides the layers,
explicit forward/backward passes, and — crucially for the paper's system
story — *per-parameter gradient hooks* that fire the moment a parameter's
gradient becomes available during back-propagation. The distributed
optimizers register hooks exactly the way ACP-SGD's implementation registers
them on PyTorch tensors (§IV-C), which is what makes wait-free
back-propagation and tensor fusion expressible here.

Design notes:

- Modules implement explicit ``forward``/``backward`` rather than taped
  autodiff; every layer's backward is hand-derived and unit-tested against
  numerical finite differences.
- Backward proceeds output-to-input, so hooks observe gradients in reverse
  layer order — the same "last layer's gradient is ready first" ordering
  that WFBP exploits.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.activation import GELU, ReLU, Tanh
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.reshape import Flatten
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderLayer
from repro.nn import init

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "CrossEntropyLoss",
    "MSELoss",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "init",
]
