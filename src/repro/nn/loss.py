"""Loss functions: forward returns scalar loss, backward returns dL/dlogits."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels (mean reduction)."""

    def __init__(self) -> None:
        self._cache: Optional[tuple] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} != batch ({logits.shape[0]},)"
            )
        log_probs = F.log_softmax(logits, axis=1)
        batch = logits.shape[0]
        loss = -log_probs[np.arange(batch), labels].mean()
        self._cache = (F.softmax(logits, axis=1), labels)
        return float(loss)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        batch = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        self._cache = None
        return grad / batch

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error (mean over all elements)."""

    def __init__(self) -> None:
        self._cache: Optional[tuple] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target
        self._cache = (diff, prediction.size)
        return float((diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        diff, count = self._cache
        self._cache = None
        return 2.0 * diff / count

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)
