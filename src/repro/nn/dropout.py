"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout: scales kept units by ``1/(1-p)`` during training."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        grad_input = grad_output * self._mask
        self._mask = None
        return grad_input
