"""Token embedding lookup."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    The weight is a large 2-D matrix (``vocab x dim``) — exactly the kind of
    parameter that dominates BERT's communication volume and that low-rank
    compression targets.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ValueError(
                f"sizes must be >= 1, got vocab={num_embeddings}, dim={embedding_dim}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise ValueError(f"Embedding expects integer ids, got dtype {ids.dtype}")
        vocab = self.weight.data.shape[0]
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= vocab:
            raise ValueError(f"ids out of range [0, {vocab})")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        grad_w = np.zeros_like(self.weight.data)
        flat_ids = self._ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        np.add.at(grad_w, flat_ids, flat_grad)
        self.weight.accumulate_grad(grad_w)
        self._ids = None
        # Ids are not differentiable; return a zero placeholder of their shape.
        return np.zeros(self._shape_of_ids(flat_ids, grad_output))

    @staticmethod
    def _shape_of_ids(flat_ids: np.ndarray, grad_output: np.ndarray) -> tuple:
        return grad_output.shape[:-1]
