"""Low-level array ops shared by layers: im2col/col2im, padding, softmax."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

# Contraction paths memoized by (subscripts, operand shapes). With
# ``optimize=True`` numpy re-runs the greedy path search on every call,
# which shows up in the hot-path profile for the per-step conv/attention
# einsums; the operand shapes repeat every step, so the path is computed
# once. The path only fixes the contraction ORDER — the arithmetic per
# contraction is unchanged, so results are bit-identical to optimize=True.
_EINSUM_PATHS: Dict[tuple, list] = {}


def cached_einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum(..., optimize=True)`` with a memoized contraction path."""
    key = (subscripts, tuple(op.shape for op in operands))
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize="greedy")[0]
        _EINSUM_PATHS[key] = path
    return np.einsum(subscripts, *operands, optimize=path)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"invalid conv geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Unfold NCHW input into (N, C*kh*kw, out_h*out_w) patch columns.

    Convolution then becomes a single GEMM — the same lowering cuDNN uses,
    which keeps the numpy convnets fast enough to actually train.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    # Strided view of all patches: shape (n, c, kh, kw, out_h, out_w).
    sn, sc, sh, sw = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    return patches.reshape(n, c * kh * kw, out_h * out_w).copy()


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch columns back to NCHW, summing overlapping contributions.

    Inverse-adjoint of :func:`im2col`; used for the conv input gradient.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for ki in range(kh):
        h_end = ki + stride * out_h
        for kj in range(kw):
            w_end = kj + stride * out_w
            padded[:, :, ki:h_end:stride, kj:w_end:stride] += cols6[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
