"""2-D convolution layer (im2col + GEMM)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Conv2d(Module):
    """2-D convolution over NCHW inputs.

    Weight shape is ``(out_channels, in_channels, kh, kw)``, matching
    PyTorch. For compression, the paper reshapes this 4-D gradient into an
    ``out_channels x (in_channels*kh*kw)`` matrix — the same flattening the
    im2col GEMM uses here.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError(
                f"bad conv geometry: kernel={kernel_size} stride={stride} "
                f"padding={padding}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        if x.shape[1] != self.weight.data.shape[1]:
            raise ValueError(
                f"input channels {x.shape[1]} != weight in_channels "
                f"{self.weight.data.shape[1]}"
            )
        n = x.shape[0]
        kh = kw = self.kernel_size
        cols = F.im2col(x, (kh, kw), self.stride, self.padding)
        out_h = F.conv_output_size(x.shape[2], kh, self.stride, self.padding)
        out_w = F.conv_output_size(x.shape[3], kw, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.weight.data.shape[0], -1)
        out = F.cached_einsum("of,nfl->nol", w_mat, cols)
        if self.bias is not None:
            # In place: ``out`` is einsum's private output buffer.
            out += self.bias.data[None, :, None]
        self._cache = (cols, x.shape)
        return out.reshape(n, -1, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape = self._cache
        n, out_c = grad_output.shape[:2]
        grad_mat = grad_output.reshape(n, out_c, -1)
        w_mat = self.weight.data.reshape(out_c, -1)

        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=(0, 2)))
        grad_w = F.cached_einsum("nol,nfl->of", grad_mat, cols)
        grad_cols = F.cached_einsum("of,nol->nfl", w_mat, grad_mat)
        grad_input = F.col2im(
            grad_cols,
            input_shape,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
        )
        self.weight.accumulate_grad(grad_w.reshape(self.weight.data.shape))
        self._cache = None
        return grad_input
