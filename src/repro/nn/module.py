"""Base class for layers and models."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class: parameter discovery, train/eval mode, call protocol.

    Subclasses implement ``forward(x)`` (caching whatever backward needs)
    and ``backward(grad_output)`` (returning the gradient w.r.t. the input
    and calling ``Parameter.accumulate_grad`` for each learnable tensor).
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter discovery (by attribute reflection, like torch.nn.Module)
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in attribute order.

        Also stamps each parameter's ``name`` so hooks and fusion buffers
        can report which layer a gradient belongs to.
        """
        for attr, value in vars(self).items():
            if attr == "training":
                continue
            path = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Parameter):
                value.name = path
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(path)
            elif isinstance(value, (list, tuple)):
                for idx, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{idx}")
                    elif isinstance(item, Parameter):
                        item.name = f"{path}.{idx}"
                        yield f"{path}.{idx}", item

    def parameters(self) -> List[Parameter]:
        """All parameters in deterministic (attribute/definition) order."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total element count across all parameters."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def submodules(self) -> Iterator["Module"]:
        """Yield direct child modules (including those in lists/tuples)."""
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def train(self) -> "Module":
        """Switch this module and all children to training mode."""
        self.training = True
        for child in self.submodules():
            child.train()
        return self

    def eval(self) -> "Module":
        """Switch this module and all children to inference mode."""
        self.training = False
        for child in self.submodules():
            child.eval()
        return self

    # ------------------------------------------------------------------
    # Forward / backward protocol
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # State (for broadcasting initial weights across workers)
    # ------------------------------------------------------------------
    def state_vector(self) -> np.ndarray:
        """Flatten all parameters into one vector (deterministic order)."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([param.data.reshape(-1) for param in params])

    def load_state_vector(self, vector: np.ndarray) -> None:
        """Inverse of :meth:`state_vector`."""
        expected = self.num_parameters()
        if vector.size != expected:
            raise ValueError(
                f"state vector has {vector.size} elements, model has {expected}"
            )
        offset = 0
        for param in self.parameters():
            count = param.size
            param.data = vector[offset : offset + count].reshape(param.shape).copy()
            offset += count
