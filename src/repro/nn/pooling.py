"""Spatial pooling layers over NCHW inputs."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        cols = F.im2col(x, (k, k), self.stride, self.padding)
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        # cols: (n, c*k*k, out_h*out_w) -> (n, c, k*k, L)
        cols = cols.reshape(n, c, k * k, -1)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
        self._cache = (argmax, x.shape, out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, input_shape, out_h, out_w = self._cache
        n, c = input_shape[:2]
        k = self.kernel_size
        grad_cols = np.zeros((n, c, k * k, out_h * out_w))
        flat_grad = grad_output.reshape(n, c, 1, -1)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], flat_grad, axis=2)
        grad_input = F.col2im(
            grad_cols.reshape(n, c * k * k, -1),
            input_shape,
            (k, k),
            self.stride,
            self.padding,
        )
        self._cache = None
        return grad_input


class AvgPool2d(Module):
    """Average pooling with square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        cols = F.im2col(x, (k, k), self.stride, self.padding)
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        out = cols.reshape(n, c, k * k, -1).mean(axis=2)
        self._input_shape = x.shape
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        k = self.kernel_size
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        flat_grad = grad_output.reshape(n, c, 1, out_h * out_w) / (k * k)
        grad_cols = np.broadcast_to(
            flat_grad, (n, c, k * k, out_h * out_w)
        ).reshape(n, c * k * k, -1)
        grad_input = F.col2im(
            np.ascontiguousarray(grad_cols),
            self._input_shape,
            (k, k),
            self.stride,
            self.padding,
        )
        self._input_shape = None
        return grad_input


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: NCHW -> NC."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        grad_input = np.broadcast_to(
            grad_output[:, :, None, None] / (h * w), self._input_shape
        ).copy()
        self._input_shape = None
        return grad_input
