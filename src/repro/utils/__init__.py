"""Shared utilities: deterministic seeding, formatting, and small helpers."""

from repro.utils.seeding import seeded_rng, spawn_rngs
from repro.utils.formatting import (
    format_bytes,
    format_count,
    format_seconds,
    render_table,
)
from repro.utils.validation import assert_finite, is_finite, payload_checksum

__all__ = [
    "seeded_rng",
    "spawn_rngs",
    "format_bytes",
    "format_count",
    "format_seconds",
    "render_table",
    "assert_finite",
    "is_finite",
    "payload_checksum",
]
