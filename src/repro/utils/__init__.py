"""Shared utilities: deterministic seeding, formatting, and small helpers."""

from repro.utils.seeding import seeded_rng, spawn_rngs
from repro.utils.formatting import (
    format_bytes,
    format_count,
    format_seconds,
    render_table,
)

__all__ = [
    "seeded_rng",
    "spawn_rngs",
    "format_bytes",
    "format_count",
    "format_seconds",
    "render_table",
]
