"""Human-readable formatting for experiment output.

The experiment drivers print tables that mirror the paper's presentation
(Table I, Table III, figure series). These helpers keep that rendering
consistent across benchmarks and examples.
"""

from __future__ import annotations

from typing import List, Sequence


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary-ish unit (KB/MB/GB, base 1024)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(count: float) -> str:
    """Format a large count compactly, e.g. ``25.6M`` parameters."""
    value = float(count)
    for unit in ("", "K", "M", "B"):
        if abs(value) < 1000.0 or unit == "B":
            if unit == "":
                return f"{value:.0f}"
            return f"{value:.1f}{unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration, switching between us / ms / s as appropriate."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column titles.
        rows: row cells; each row must have ``len(headers)`` entries.

    Returns:
        A multi-line string with a header rule, suitable for printing from
        benchmarks so the output can be compared side by side with the paper.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
