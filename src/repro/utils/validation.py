"""Payload validation helpers shared by the fault-tolerance machinery.

Two primitives, both cheap enough to run on every collective payload:

- :func:`assert_finite` — raise with a useful message when an array carries
  NaN/Inf (the symptom of payload corruption or an EF residual blow-up);
- :func:`payload_checksum` — CRC-32 of an array's raw bytes. CRC-32 detects
  every single-bit error, so a bit-flipped payload never passes, which is
  what :class:`~repro.faults.resilient.ResilientProcessGroup` relies on to
  tell a corrupted transfer from a clean one.
"""

from __future__ import annotations

import zlib

import numpy as np


def assert_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise ``ValueError`` unless every element of ``array`` is finite.

    Returns the array unchanged so the call can be inlined into a pipeline::

        dense = assert_finite(decompress(payload), "qsgd payload")
    """
    array = np.asarray(array)
    if array.dtype.kind not in "fc":
        return array  # integer/bool payloads cannot carry NaN/Inf
    finite = np.isfinite(array)
    if not finite.all():
        bad = int(array.size - finite.sum())
        raise ValueError(
            f"{name} contains {bad} non-finite value(s) out of {array.size}"
        )
    return array


def payload_checksum(array: np.ndarray) -> int:
    """CRC-32 of the array's raw bytes (shape/dtype-independent).

    Used as the lightweight integrity check on collective payloads; any
    single-bit corruption changes the checksum.
    """
    return zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


def is_finite(array: np.ndarray) -> bool:
    """True when every element of ``array`` is finite (NaN/Inf-free)."""
    array = np.asarray(array)
    if array.dtype.kind not in "fc":
        return True
    return bool(np.isfinite(array).all())
