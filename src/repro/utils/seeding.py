"""Deterministic random-number generation helpers.

Every stochastic component in the library (weight init, data synthesis,
compressor initialization, worker-local sampling) draws from an explicit
``numpy.random.Generator`` rather than the global numpy state, so experiments
are reproducible bit-for-bit and workers can be given decorrelated streams.
"""

from __future__ import annotations

from typing import List

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed``.

    Args:
        seed: any non-negative integer. The same seed always yields the same
            stream.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Return ``count`` statistically independent generators.

    Uses ``SeedSequence.spawn`` so that the child streams are decorrelated
    regardless of the numeric relationship between their indices. Used to give
    each simulated worker its own data-shard sampling stream.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
