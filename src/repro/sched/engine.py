"""The one event loop: processor-sharing simulation of a task graph.

:class:`EventLoop` runs a :class:`~repro.sched.graph.TaskGraph` (or a
plain task sequence) over any set of named resources, with

- per-resource scheduling *disciplines* resolved through
  :mod:`repro.sched.scheduler` (``"fifo"`` default, ``"priority"``, or
  any object exposing ``select``),
- a :class:`~repro.sched.resources.ResourceModel` supplying pairwise
  contention rates (the legacy two-GPU slowdown is one pair),
- ``start_after`` time gates consumed from a **sorted queue** as the
  clock advances: the legacy engine rescanned every task per horizon
  iteration (O(tasks) per event, quadratic overall); here the pending
  gates are sorted once and a monotone cursor yields the next gate in
  O(1). A task can never complete before its own gate, so entries the
  clock has passed are dead forever and the cursor never backtracks —
  records are identical, large gated DAGs run measurably faster
  (``python -m repro bench --sim``).

Semantics are bit-compatible with the original ``repro.sim.engine``
loop (the golden-trace suite enforces this): zero-work tasks cascade at
the current instant, completion uses the same ``1e-15`` epsilon, rate
changes happen only at task completions or gate expirations, and the
clock jumps over fully-gated regions.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sched.graph import Task, TaskGraph, TaskRecord
from repro.sched.resources import ResourceModel
from repro.sched.scheduler import FifoScheduler, resolve_discipline


class EventLoop:
    """Run a task graph to completion and return per-task records.

    Args:
        resources: pairwise contention model (default: no contention —
            every resource always runs at full speed).
        disciplines: per-resource discipline, as a registry name
            (``"fifo"``/``"priority"``) or a scheduler object. Resources
            not listed use ``default_discipline``.
        default_discipline: discipline for unlisted resources.
    """

    def __init__(
        self,
        resources: Optional[ResourceModel] = None,
        disciplines: Optional[Mapping[str, Union[str, object]]] = None,
        default_discipline: Union[str, object] = "fifo",
    ) -> None:
        self.resources = resources if resources is not None else ResourceModel()
        self.disciplines = {
            stream: resolve_discipline(spec, stream)
            for stream, spec in (disciplines or {}).items()
        }
        self._default = resolve_discipline(default_discipline, "<default>")

    def run(
        self, graph: Union[TaskGraph, Sequence[Task]]
    ) -> Dict[str, TaskRecord]:
        """Simulate the graph; returns records keyed by task_id.

        Raises:
            ValueError: duplicate ids, unknown dependencies, or a
                deadlock (circular dependencies / FIFO head blocked
                forever).
        """
        graph = TaskGraph.coerce(graph)
        tasks = graph.tasks

        queues: Dict[str, List[Task]] = {}
        for task in tasks:  # submission order
            queues.setdefault(task.stream, []).append(task)
        heads: Dict[str, int] = {stream: 0 for stream in queues}
        current: Dict[str, Optional[Task]] = {stream: None for stream in queues}
        schedulers = {
            stream: self.disciplines.get(stream, self._default)
            for stream in queues
        }

        remaining: Dict[str, float] = {t.task_id: t.work for t in tasks}
        started: Dict[str, float] = {}
        done: Dict[str, float] = {}
        now = 0.0

        # Satellite: pending start_after gates, sorted once. gate_idx only
        # moves forward — a task cannot finish before its own gate, so any
        # entry with start_after <= now is spent for the rest of the run.
        gated: Tuple[Task, ...] = tuple(sorted(
            (t for t in tasks if t.start_after > 0.0),
            key=lambda t: t.start_after,
        ))
        gate_idx = 0

        def ready(task: Task) -> bool:
            return (
                all(dep in done for dep in task.deps)
                and now >= task.start_after
            )

        def select(stream: str) -> Optional[Task]:
            """The task this resource would run now (non-preemptive)."""
            if current[stream] is not None:
                return current[stream]
            task, heads[stream] = schedulers[stream].select(
                queues[stream], heads[stream], done, ready
            )
            return task

        total = len(tasks)
        while len(done) < total:
            # Complete zero-work selectable tasks immediately (may cascade).
            progressed = True
            while progressed:
                progressed = False
                for stream in queues:
                    task = select(stream)
                    if task is not None and remaining[task.task_id] == 0.0:
                        started.setdefault(task.task_id, now)
                        done[task.task_id] = now
                        current[stream] = None
                        progressed = True
            if len(done) == total:
                break

            # Determine active tasks.
            active: Dict[str, Task] = {}
            for stream in queues:
                task = select(stream)
                if task is not None:
                    active[stream] = task
                    current[stream] = task

            while gate_idx < len(gated) and gated[gate_idx].start_after <= now:
                gate_idx += 1

            if not active:
                # Everything runnable is time-gated: jump the clock to the
                # earliest future gate whose dependencies are met.
                jumped = False
                for idx in range(gate_idx, len(gated)):
                    candidate = gated[idx]
                    if all(dep in done for dep in candidate.deps):
                        now = candidate.start_after
                        jumped = True
                        break
                if jumped:
                    continue
                pending = [t.task_id for t in tasks if t.task_id not in done]
                raise ValueError(f"deadlock: no runnable task among {pending}")

            rates = self.resources.rates(active)

            # Advance to the earliest completion, but never past a pending
            # task's start_after gate (an idle resource must be able to
            # pick it up the moment it becomes eligible).
            horizon = min(
                remaining[task.task_id] / rates[stream]
                for stream, task in active.items()
            )
            if gate_idx < len(gated):
                horizon = min(horizon, gated[gate_idx].start_after - now)
            for stream, task in active.items():
                started.setdefault(task.task_id, now)
                remaining[task.task_id] -= rates[stream] * horizon
            now += horizon
            for stream, task in list(active.items()):
                if remaining[task.task_id] <= 1e-15:
                    remaining[task.task_id] = 0.0
                    done[task.task_id] = now
                    current[stream] = None

        return {
            task.task_id: TaskRecord(task, started[task.task_id], done[task.task_id])
            for task in tasks
        }
