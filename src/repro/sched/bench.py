"""Scheduler-core micro-benchmark: ``python -m repro bench --sim``.

Stresses the event loop on a wide, heavily *gated* task graph — the shape
that made the legacy engine quadratic: every event horizon used to rescan
all ``start_after`` gates in the graph, so a timeline of N gated tasks
cost O(N^2) scans. The :class:`repro.sched.EventLoop` keeps the gates in
a once-sorted queue behind a monotone cursor (a task can never complete
before its own ``start_after``, so passed gates are permanently dead),
making the same timeline O(N log N).

The benchmark asserts two things besides reporting throughput: the run
is deterministic (two runs produce identical records), and the measured
per-task cost stays roughly flat as the graph doubles — the signature of
the sorted gate queue (a rescanning loop doubles its per-task cost).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.sched.engine import EventLoop
from repro.sched.graph import Task, TaskGraph


def build_bench_graph(
    num_tasks: int, streams: int = 8, seed: int = 3
) -> TaskGraph:
    """A synthetic gated DAG shaped like a chained training timeline.

    ``streams`` parallel resources; ~30% of tasks depend on their
    predecessor on the same stream, and ~60% carry a ``start_after`` gate
    staggered along the timeline (the bucket-ready times of a WFBP
    schedule). Work amounts are seeded, so the graph — and the resulting
    records — are reproducible.
    """
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    rng = np.random.default_rng(seed)
    graph = TaskGraph()
    for index in range(num_tasks):
        deps = ()
        if index >= streams and rng.random() < 0.3:
            deps = (f"t{index - streams}",)
        gated = rng.random() < 0.6
        graph.add(Task(
            task_id=f"t{index}",
            stream=f"s{index % streams}",
            work=float(rng.uniform(1e-5, 1e-3)),
            deps=deps,
            start_after=(index // streams) * 5e-4 if gated else 0.0,
        ))
    return graph


def _time_run(graph: TaskGraph) -> Dict[str, float]:
    loop = EventLoop()
    start = time.perf_counter()
    records = loop.run(graph)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "makespan_s": max(r.end for r in records.values()),
        "records": records,
    }


def run_sim_bench(
    num_tasks: int = 20000, streams: int = 8, seed: int = 3
) -> Dict[str, object]:
    """Benchmark the event loop on gated DAGs of ``num_tasks`` and half.

    Returns a JSON-safe report. Raises ``RuntimeError`` if the loop is
    non-deterministic, or if per-task cost more than quadruples from the
    half-size to the full-size graph (the quadratic-gate-scan signature;
    4x leaves slack for noise — a rescanning loop shows ~2x per task per
    doubling and compounds well past 4x at these sizes).
    """
    if num_tasks < 200:
        raise ValueError(f"num_tasks must be >= 200, got {num_tasks}")
    half_graph = build_bench_graph(num_tasks // 2, streams, seed)
    full_graph = build_bench_graph(num_tasks, streams, seed)

    # Warm-up + determinism check on the full graph.
    first = _time_run(full_graph)
    second = _time_run(full_graph)
    mismatch = [
        task_id for task_id, record in first["records"].items()
        if (second["records"][task_id].start, second["records"][task_id].end)
        != (record.start, record.end)
    ]
    if mismatch:
        raise RuntimeError(
            f"event loop is non-deterministic: {len(mismatch)} records "
            f"differ between identical runs (first: {mismatch[0]!r})"
        )

    half = min(_time_run(half_graph), _time_run(half_graph),
               key=lambda r: r["wall_s"])
    full = min(first, second, key=lambda r: r["wall_s"])
    per_task_half = half["wall_s"] / (num_tasks // 2)
    per_task_full = full["wall_s"] / num_tasks
    growth = per_task_full / per_task_half if per_task_half > 0 else 1.0
    if growth > 4.0:
        raise RuntimeError(
            f"per-task cost grew {growth:.1f}x from {num_tasks // 2} to "
            f"{num_tasks} tasks — the gate queue is rescanning instead of "
            "advancing its cursor"
        )
    return {
        "num_tasks": num_tasks,
        "streams": streams,
        "seed": seed,
        "wall_s": full["wall_s"],
        "tasks_per_s": num_tasks / full["wall_s"],
        "makespan_s": full["makespan_s"],
        "half_wall_s": half["wall_s"],
        "per_task_cost_growth": growth,
        "deterministic": True,
    }


def render_sim_report(report: Dict[str, object]) -> str:
    """One-glance text form of :func:`run_sim_bench`'s report."""
    lines: List[str] = [
        f"scheduler-core bench: {report['num_tasks']} tasks on "
        f"{report['streams']} streams (seed {report['seed']})",
        f"  full graph: {report['wall_s'] * 1e3:8.1f}ms wall "
        f"({report['tasks_per_s']:,.0f} tasks/s), "
        f"makespan {report['makespan_s']:.3f}s",
        f"  half graph: {report['half_wall_s'] * 1e3:8.1f}ms wall",
        f"  per-task cost growth (half -> full): "
        f"{report['per_task_cost_growth']:.2f}x (must stay <= 4x)",
        "  determinism: two runs bit-identical",
    ]
    return "\n".join(lines)
