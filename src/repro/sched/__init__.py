"""Layered scheduling core: task graphs, resources, schedulers, one loop.

Layering (each importable and testable on its own):

- :mod:`repro.sched.graph` — :class:`Task`, :class:`TaskGraph`,
  :class:`TaskRecord`: typed tasks with resources and dependencies, plus
  the structural transforms builders need.
- :mod:`repro.sched.resources` — :class:`ResourceModel` (named
  resources, per-pair contention rates) and :class:`ResourcePool`
  (groups for placement).
- :mod:`repro.sched.scheduler` — pluggable disciplines (``fifo``,
  ``priority``) and placement schedulers (least-loaded,
  topology-aware); extend :data:`DISCIPLINES` to add one.
- :mod:`repro.sched.engine` — :class:`EventLoop`, the single
  processor-sharing event loop driving any combination of the above.
- :mod:`repro.sched.builders` — graph builders for collectives over a
  :class:`~repro.comm.topology.ClusterTopology` (flat vs hierarchical
  all-reduce as task DAGs over per-node resources).

The legacy ``repro.sim.engine.Engine`` is a thin adapter over this
package; strategy/pipeline/fault timelines in :mod:`repro.sim` are
builders producing :class:`TaskGraph` instances.
"""

from repro.sched.builders import (
    build_allreduce_graph,
    node_pools,
    simulate_allreduce_makespan,
)
from repro.sched.engine import EventLoop
from repro.sched.graph import Task, TaskGraph, TaskRecord
from repro.sched.resources import ResourceModel, ResourcePool
from repro.sched.scheduler import (
    DISCIPLINES,
    FifoScheduler,
    LeastLoadedPlacement,
    PriorityScheduler,
    TopologyPlacement,
    resolve_discipline,
)

__all__ = [
    "DISCIPLINES",
    "EventLoop",
    "FifoScheduler",
    "LeastLoadedPlacement",
    "PriorityScheduler",
    "ResourceModel",
    "ResourcePool",
    "Task",
    "TaskGraph",
    "TaskRecord",
    "TopologyPlacement",
    "build_allreduce_graph",
    "node_pools",
    "resolve_discipline",
    "simulate_allreduce_makespan",
]
