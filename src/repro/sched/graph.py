"""Typed task graphs: the unit of work the scheduling core runs.

A :class:`Task` names a unit of simulated work on a *resource* (a GPU
stream, a NIC, one node's PCIe complex — any string); a
:class:`TaskGraph` is an ordered, validated collection of tasks with
dependency edges. Graphs are what the strategy/pipeline/fault *builders*
produce and what :class:`repro.sched.engine.EventLoop` consumes; they
also support the structural transforms those builders need (prefixing
for iteration chaining, dependency rewrites, per-task mapping) so no
caller has to reconstruct ``Task`` tuples by hand.

Submission order is semantically significant — FIFO disciplines replay
it and priority disciplines use it to break ties — so every transform
preserves it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)


@dataclass
class Task:
    """One unit of simulated work.

    Attributes:
        task_id: unique name.
        stream: resource this task runs on. The legacy engine used the
            fixed trio ``gpu_main``/``gpu_side``/``nic``; the scheduling
            core accepts any name (including a :class:`~repro.sched
            .resources.ResourcePool` name to be resolved by a placement
            scheduler).
        work: seconds of work at full rate (>= 0).
        deps: task_ids that must complete before this task may start.
        tag: breakdown category — ``"forward"``, ``"backward"``,
            ``"compression"``, ``"comm"`` or ``"other"``.
        contends: whether this task competes for shared execution
            resources. FLOP-heavy kernels (BP layers, compression GEMMs)
            contend; launch-latency-bound work (tall-skinny QR, which
            barely occupies the SMs) runs concurrently without mutual
            slowdown. Contention between two resources applies only when
            *both* current tasks contend.
        priority: scheduling priority, used only on streams configured
            with the ``"priority"`` discipline (higher runs first among
            ready tasks). Models tensor-priority communication schedulers
            (ByteScheduler / the paper's reference [3]).
        start_after: wall-clock time before which this task may not
            start, even if its dependencies are done. Models externally
            imposed delays — a rank that is down until recovery, a
            retransmit timeout — without inflating the task's own work.
    """

    task_id: str
    stream: str
    work: float
    deps: Tuple[str, ...] = ()
    tag: str = "other"
    contends: bool = True
    priority: int = 0
    start_after: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"task {self.task_id!r} has negative work {self.work}")
        if self.start_after < 0:
            raise ValueError(
                f"task {self.task_id!r} has negative start_after {self.start_after}"
            )


@dataclass
class TaskRecord:
    """Execution record of one task."""

    task: Task
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class TaskGraph:
    """An ordered collection of :class:`Task` with dependency edges.

    Duplicate ids are rejected at insertion; dangling dependency edges
    are rejected by :meth:`validate` (run automatically by the event
    loop), matching the legacy engine's two-pass validation order.
    """

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: List[Task] = []
        self._by_id: Dict[str, Task] = {}
        self.extend(tasks)

    # -- construction -------------------------------------------------
    def add(self, task: Task) -> None:
        if task.task_id in self._by_id:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self._by_id[task.task_id] = task
        self._tasks.append(task)

    def extend(self, tasks: Iterable[Task]) -> None:
        for task in tasks:
            self.add(task)

    def validate(self) -> None:
        """Reject dependency edges that point at no task in the graph."""
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_id:
                    raise ValueError(
                        f"task {task.task_id!r} depends on unknown {dep!r}"
                    )

    @classmethod
    def coerce(cls, obj: Union["TaskGraph", Sequence[Task]]) -> "TaskGraph":
        """Accept a graph or a plain task sequence (the legacy API)."""
        graph = obj if isinstance(obj, cls) else cls(obj)
        graph.validate()
        return graph

    # -- inspection ---------------------------------------------------
    @property
    def tasks(self) -> Tuple[Task, ...]:
        """All tasks in submission order."""
        return tuple(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._by_id

    def get(self, task_id: str) -> Optional[Task]:
        return self._by_id.get(task_id)

    def resources(self) -> Tuple[str, ...]:
        """Distinct resource names, in first-use order."""
        seen: Dict[str, None] = {}
        for task in self._tasks:
            seen.setdefault(task.stream, None)
        return tuple(seen)

    def critical_path_work(self) -> float:
        """Longest dependency chain by summed ``work`` (a makespan floor)."""
        self.validate()
        finish: Dict[str, float] = {}
        for task in self._topological():
            upstream = max((finish[dep] for dep in task.deps), default=0.0)
            finish[task.task_id] = upstream + task.work
        return max(finish.values(), default=0.0)

    def _topological(self) -> List[Task]:
        indegree = {t.task_id: len(t.deps) for t in self._tasks}
        children: Dict[str, List[str]] = {t.task_id: [] for t in self._tasks}
        for task in self._tasks:
            for dep in task.deps:
                children[dep].append(task.task_id)
        frontier = [t.task_id for t in self._tasks if indegree[t.task_id] == 0]
        order: List[Task] = []
        while frontier:
            task_id = frontier.pop()
            order.append(self._by_id[task_id])
            for child in children[task_id]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self._tasks):
            cyclic = sorted(tid for tid, deg in indegree.items() if deg > 0)
            raise ValueError(f"dependency cycle through {cyclic}")
        return order

    # -- transforms (all preserve submission order) -------------------
    def prefixed(self, prefix: str) -> "TaskGraph":
        """Clone with every id (and dependency edge) prefixed."""
        return TaskGraph(
            replace(
                task,
                task_id=prefix + task.task_id,
                deps=tuple(prefix + dep for dep in task.deps),
            )
            for task in self._tasks
        )

    def with_deps(self, deps: Mapping[str, Tuple[str, ...]]) -> "TaskGraph":
        """Clone with the listed tasks' dependency tuples *replaced*."""
        unknown = [task_id for task_id in deps if task_id not in self._by_id]
        if unknown:
            raise ValueError(f"with_deps: unknown task ids {unknown}")
        return TaskGraph(
            replace(task, deps=deps[task.task_id])
            if task.task_id in deps else task
            for task in self._tasks
        )

    def map_tasks(self, fn: Callable[[Task], Task]) -> "TaskGraph":
        """Clone with ``fn`` applied to every task (fault perturbation)."""
        return TaskGraph(fn(task) for task in self._tasks)

    def merged(self, *others: "TaskGraph") -> "TaskGraph":
        """Concatenate graphs (duplicate ids across parts are rejected)."""
        graph = TaskGraph(self._tasks)
        for other in others:
            graph.extend(other.tasks)
        return graph
