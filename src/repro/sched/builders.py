"""Collective task-graph builders over a two-level cluster topology.

These builders express the flat and hierarchical all-reduce schedules of
:mod:`repro.comm.topology` as task DAGs over per-node resources, placed
by the topology-aware scheduler. Running them through
:class:`~repro.sched.engine.EventLoop` reproduces the analytic
``flat_allreduce_time`` / ``hierarchical_allreduce_time`` makespans (and
hence the flat-vs-hierarchical crossover) from first principles — per
phase, per node, per link — instead of from one closed-form expression,
which is what lets the same machinery answer questions the formula
cannot (stragglers on one node, pools wider than one NIC, overlapping
several collectives).

Resource naming convention (one member per node, index = node):
``node{i}:intra`` for the node's GPU-to-GPU link, ``node{i}:nic`` for
its NIC. :func:`node_pools` builds the matching pools.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.comm.cost_model import allreduce_time
from repro.comm.topology import ClusterTopology, _ring_phase_time
from repro.sched.engine import EventLoop
from repro.sched.graph import Task, TaskGraph
from repro.sched.resources import ResourcePool
from repro.sched.scheduler import TopologyPlacement

#: Pool names used by the collective builders.
INTRA_POOL = "intra"
NIC_POOL = "nic"

SCHEMES = ("flat", "hierarchical")


def node_pools(topology: ClusterTopology) -> Tuple[ResourcePool, ResourcePool]:
    """The per-node intra-link and NIC pools for a topology."""
    nodes = range(topology.num_nodes)
    return (
        ResourcePool(INTRA_POOL, tuple(f"node{i}:intra" for i in nodes)),
        ResourcePool(NIC_POOL, tuple(f"node{i}:nic" for i in nodes)),
    )


def build_allreduce_graph(
    nbytes: float,
    topology: ClusterTopology,
    scheme: str = "hierarchical",
    prefix: str = "",
) -> TaskGraph:
    """One all-reduce of ``nbytes`` as a placed task DAG.

    ``"flat"``: a single ring over all GPUs — reduce-scatter then
    all-gather, every step crossing the inter-node link, each node's NIC
    busy for both phases.

    ``"hierarchical"``: per-node intra reduce-scatter on the fast link,
    an inter-node ring over the leaders (all local shards cross in
    parallel but share each NIC, so each NIC carries the full buffer's
    inter-ring traffic), then per-node intra all-gather. The inter phase
    is a collective: it starts only once *every* node's reduce-scatter
    is done.

    Tasks carry node hints and pool-level streams; the returned graph is
    already placed onto ``node{i}:intra`` / ``node{i}:nic`` by
    :class:`~repro.sched.scheduler.TopologyPlacement`.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; available: {SCHEMES}")

    nodes = topology.num_nodes
    graph = TaskGraph()
    hints: Dict[str, int] = {}

    def comm(task_id: str, work: float, deps: Tuple[str, ...],
             pool: str, node: int) -> str:
        task_id = prefix + task_id
        graph.add(Task(task_id, pool, work,
                       tuple(prefix + dep for dep in deps),
                       tag="comm", contends=False))
        hints[task_id] = node
        return task_id

    if scheme == "flat":
        phase = _ring_phase_time(
            nbytes, topology.world_size, topology.inter_link
        )
        rs_ids = tuple(
            comm(f"flat_rs[n{i}]", phase, (), NIC_POOL, i)
            for i in range(nodes)
        )
        bare_rs = tuple(tid[len(prefix):] for tid in rs_ids)
        for i in range(nodes):
            comm(f"flat_ag[n{i}]", phase, bare_rs, NIC_POOL, i)
    else:
        intra_phase = _ring_phase_time(
            nbytes, topology.gpus_per_node, topology.intra_link
        )
        inter = allreduce_time(nbytes, nodes, topology.inter_link)
        rs_ids = tuple(
            comm(f"hier_rs[n{i}]", intra_phase, (), INTRA_POOL, i)
            for i in range(nodes)
        )
        bare_rs = tuple(tid[len(prefix):] for tid in rs_ids)
        for i in range(nodes):
            comm(f"hier_inter[n{i}]", inter, bare_rs, NIC_POOL, i)
        for i in range(nodes):
            comm(f"hier_ag[n{i}]", intra_phase, (f"hier_inter[n{i}]",),
                 INTRA_POOL, i)

    placement = TopologyPlacement(topology, hints)
    return placement.assign(graph, node_pools(topology))


def simulate_allreduce_makespan(
    nbytes: float,
    topology: ClusterTopology,
    scheme: str = "hierarchical",
) -> float:
    """Makespan of one all-reduce DAG through the event loop."""
    graph = build_allreduce_graph(nbytes, topology, scheme)
    records = EventLoop().run(graph)
    return max((record.end for record in records.values()), default=0.0)
