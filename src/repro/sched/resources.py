"""Named resources, resource pools, and per-pair contention.

The legacy engine special-cased exactly one interaction: while both GPU
streams run FLOP-heavy work, each progresses at ``contention_rate``.
:class:`ResourceModel` generalizes that to any set of named resources
with a rate per *pair*: while resources ``a`` and ``b`` both run tasks
that declare ``contends=True``, each runs at the pair's rate (a resource
contending with several busy partners takes the most pessimistic rate).
Resources never named in a pair — the NIC, per-node links — always run
at full speed.

:class:`ResourcePool` names a *group* of interchangeable resources
(e.g. every node's NIC); placement schedulers
(:mod:`repro.sched.scheduler`) resolve pool-addressed tasks onto
concrete members before the event loop runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.sched.graph import Task


@dataclass(frozen=True)
class ResourcePool:
    """A named group of interchangeable concrete resources."""

    name: str
    members: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError(f"pool {self.name!r} has no members")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"pool {self.name!r} has duplicate members")
        if self.name in self.members:
            raise ValueError(
                f"pool {self.name!r} may not contain a member named after itself"
            )


class ResourceModel:
    """Pairwise-contention rate model over named resources.

    Args:
        contention: mapping of resource-name pairs (any 2-iterable) to
            the rate in ``(0, 1]`` each side runs at while both are busy
            with contending tasks.
    """

    def __init__(
        self,
        contention: Optional[Mapping[Iterable[str], float]] = None,
    ) -> None:
        self._pairs: Dict[FrozenSet[str], float] = {}
        for pair, rate in (contention or {}).items():
            key = frozenset(pair)
            if len(key) != 2:
                raise ValueError(
                    f"contention pair must name two distinct resources, got {pair!r}"
                )
            if not 0.0 < rate <= 1.0:
                raise ValueError(
                    f"contention_rate must be in (0, 1], got {rate}"
                )
            self._pairs[key] = rate

    @classmethod
    def gpu_contention(cls, contention_rate: float) -> "ResourceModel":
        """The legacy model: ``gpu_main`` and ``gpu_side`` interfere."""
        return cls({("gpu_main", "gpu_side"): contention_rate})

    @property
    def pairs(self) -> Mapping[FrozenSet[str], float]:
        return dict(self._pairs)

    def rates(self, active: Mapping[str, Task]) -> Dict[str, float]:
        """Execution rate of each active resource given who else is busy.

        A resource's rate is the minimum over its contending partners'
        pair rates (1.0 when unpaired, idle partners, or either side's
        task opts out of contention). Iteration order of ``active`` is
        preserved so downstream float arithmetic is reproducible.
        """
        rates: Dict[str, float] = {}
        for resource, task in active.items():
            rate = 1.0
            if task.contends and self._pairs:
                for other, other_task in active.items():
                    if other == resource or not other_task.contends:
                        continue
                    pair_rate = self._pairs.get(frozenset((resource, other)))
                    if pair_rate is not None and pair_rate < rate:
                        rate = pair_rate
            rates[resource] = rate
        return rates
