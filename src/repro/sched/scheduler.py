"""Pluggable schedulers: per-resource disciplines and graph placement.

Two scheduler kinds, both plain objects testable without the event loop:

- **Disciplines** order one resource's queue. :class:`FifoScheduler`
  replays submission order with head-of-line blocking (CUDA stream /
  NCCL queue semantics); :class:`PriorityScheduler` runs the highest
  ``Task.priority`` among dependency-ready tasks (a ByteScheduler-style
  communication scheduler). The event loop calls ``select`` once per
  decision point; a discipline never mutates the queue.

- **Placement schedulers** assign pool-addressed tasks to concrete
  resources *before* the run: :class:`LeastLoadedPlacement` balances by
  accumulated work, :class:`TopologyPlacement` pins tasks to their
  node's member of each pool (intra-node links, per-node NICs) using a
  :class:`~repro.comm.topology.ClusterTopology` and per-task node hints.

To add a discipline, implement ``select`` and register it in
:data:`DISCIPLINES`; every consumer (legacy ``Engine`` included) resolves
names through :func:`resolve_discipline`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.comm.topology import ClusterTopology
from repro.sched.graph import Task, TaskGraph
from repro.sched.resources import ResourcePool

#: ``select`` inputs: the queue, the FIFO cursor, completed ids, and a
#: readiness predicate (deps done and ``start_after`` passed). Returns
#: the chosen task (or None) plus the advanced cursor.
ReadyFn = Callable[[Task], bool]


class FifoScheduler:
    """Strict submission order; a blocked head stalls the whole queue."""

    name = "fifo"

    def select(
        self,
        queue: Sequence[Task],
        cursor: int,
        done: Mapping[str, float],
        is_ready: ReadyFn,
    ) -> Tuple[Optional[Task], int]:
        idx = cursor
        while idx < len(queue) and queue[idx].task_id in done:
            idx += 1
        if idx < len(queue) and is_ready(queue[idx]):
            return queue[idx], idx
        return None, idx


class PriorityScheduler:
    """Highest ``Task.priority`` among ready tasks; submission order
    breaks ties; a blocked head does not stall the queue."""

    name = "priority"

    def select(
        self,
        queue: Sequence[Task],
        cursor: int,
        done: Mapping[str, float],
        is_ready: ReadyFn,
    ) -> Tuple[Optional[Task], int]:
        best: Optional[Task] = None
        for candidate in queue:
            if candidate.task_id in done:
                continue
            if not is_ready(candidate):
                continue
            if best is None or candidate.priority > best.priority:
                best = candidate
        return best, cursor


#: Name -> discipline factory. Extend this to plug in new disciplines.
DISCIPLINES: Dict[str, Callable[[], object]] = {
    "fifo": FifoScheduler,
    "priority": PriorityScheduler,
}

Discipline = Union[FifoScheduler, PriorityScheduler]


def resolve_discipline(spec: Union[str, object], stream: str = "?") -> object:
    """Turn a discipline name (or ready-made scheduler) into an object."""
    if isinstance(spec, str):
        factory = DISCIPLINES.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown discipline {spec!r} for stream {stream!r}"
            )
        return factory()
    if not hasattr(spec, "select"):
        raise ValueError(
            f"discipline for stream {stream!r} must be a name in "
            f"{sorted(DISCIPLINES)} or expose select(), got {spec!r}"
        )
    return spec


# ---------------------------------------------------------------------------
# Placement: pool-addressed graphs -> concrete resources.
# ---------------------------------------------------------------------------


class LeastLoadedPlacement:
    """Assign each pool task to the member with the least assigned work.

    Ties go to the lowest-index member, so placement is deterministic in
    submission order.
    """

    def assign(
        self,
        graph: TaskGraph,
        pools: Sequence[ResourcePool],
        hints: Optional[Mapping[str, int]] = None,
    ) -> TaskGraph:
        by_name = {pool.name: pool for pool in pools}
        load: Dict[str, float] = {
            member: 0.0 for pool in pools for member in pool.members
        }

        def place(task: Task) -> Task:
            pool = by_name.get(task.stream)
            if pool is None:
                return task
            member = self._pick(task, pool, hints or {}, load)
            load[member] += task.work
            from dataclasses import replace

            return replace(task, stream=member)

        return graph.map_tasks(place)

    def _pick(
        self,
        task: Task,
        pool: ResourcePool,
        hints: Mapping[str, int],
        load: Dict[str, float],
    ) -> str:
        idx = min(
            range(len(pool.members)),
            key=lambda i: (load[pool.members[i]], i),
        )
        return pool.members[idx]


class TopologyPlacement(LeastLoadedPlacement):
    """Topology-aware placement: honor per-task node pins.

    A task hinted to node ``k`` lands on member ``k`` of its pool (pools
    are laid out one member per node, the :func:`repro.sched.builders
    .node_pools` convention). Unhinted tasks fall back to least-loaded.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        hints: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.topology = topology
        self.hints = dict(hints or {})

    def assign(
        self,
        graph: TaskGraph,
        pools: Sequence[ResourcePool],
        hints: Optional[Mapping[str, int]] = None,
    ) -> TaskGraph:
        merged = dict(self.hints)
        merged.update(hints or {})
        return super().assign(graph, pools, merged)

    def _pick(
        self,
        task: Task,
        pool: ResourcePool,
        hints: Mapping[str, int],
        load: Dict[str, float],
    ) -> str:
        node = hints.get(task.task_id)
        if node is not None:
            if not 0 <= node < self.topology.num_nodes:
                raise ValueError(
                    f"task {task.task_id!r} pinned to node {node}, but the "
                    f"topology has {self.topology.num_nodes} nodes"
                )
            if len(pool.members) != self.topology.num_nodes:
                raise ValueError(
                    f"pool {pool.name!r} has {len(pool.members)} members but "
                    f"the topology has {self.topology.num_nodes} nodes"
                )
            return pool.members[node]
        return super()._pick(task, pool, hints, load)


# Membership check used by docs/tests ("how to add a scheduler").
PLACEMENTS: Dict[str, Callable[..., object]] = {
    "least_loaded": LeastLoadedPlacement,
    "topology": TopologyPlacement,
}
