"""Fig. 8: time breakdowns of S-SGD, Power-SGD, Power-SGD*, ACP-SGD."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import METHOD_LABELS, format_rows, paper_rank
from repro.models import get_model_spec
from repro.sim.results import IterationBreakdown
from repro.sim.strategies import ClusterSpec, simulate_iteration

FIG8_MODELS = ("ResNet-50", "BERT-Base")
FIG8_METHODS = ("ssgd", "powersgd", "powersgd_star", "acpsgd")


@dataclass(frozen=True)
class Fig8Row:
    """One (model, method) breakdown."""

    model: str
    method: str
    breakdown: IterationBreakdown


def run_fig8(cluster: ClusterSpec = ClusterSpec()) -> List[Fig8Row]:
    """Simulate Fig. 8's eight breakdown bars."""
    rows = []
    for name in FIG8_MODELS:
        spec = get_model_spec(name)
        for method in FIG8_METHODS:
            rows.append(
                Fig8Row(
                    name, method,
                    simulate_iteration(method, spec, cluster=cluster,
                                       rank=paper_rank(name)),
                )
            )
    return rows


def render(rows: List[Fig8Row]) -> str:
    headers = ["Model", "Method", "total", "ff&bp", "compress", "comm (non-ovl)"]
    body = []
    for row in rows:
        total, ffbp, comp, comm = row.breakdown.milliseconds
        body.append([
            row.model, METHOD_LABELS[row.method],
            f"{total:.0f}ms", f"{ffbp:.0f}ms", f"{comp:.0f}ms", f"{comm:.0f}ms",
        ])
    return format_rows(headers, body)
