"""Machine-readable export of the full evaluation.

``collect_all`` gathers every experiment's structured results into one
JSON-serializable dict, so downstream users can plot the figures with
their own tooling instead of parsing the text renderings.
Exposed via ``python -m repro evaluate --json out.json``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict


def _plain(value: Any) -> Any:
    """Recursively convert dataclasses / numpy scalars to JSON-safe types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    return value


def collect_all(fast: bool = True) -> Dict[str, Any]:
    """Run every experiment driver and return structured results.

    Args:
        fast: skip the convergence figures (minutes of numpy training).
    """
    import repro.experiments as E

    out: Dict[str, Any] = {
        "table1": _plain(E.run_table1()),
        "table2": _plain(E.run_table2()),
        "fig2": _plain(E.run_fig2()),
        "fig3": _plain(E.run_fig3()),
        "fig5": [
            {
                "model": item.model,
                "rank": item.rank,
                "uncompressed_sizes": list(item.uncompressed_sizes),
                "compressed_sizes": list(item.compressed_sizes),
            }
            for item in E.run_fig5()
        ],
        "table3": _plain(E.run_table3()),
        "fig8": _plain(E.run_fig8()),
        "fig9": _plain(E.run_fig9()),
        "fig10": _plain(E.run_fig10()),
        "fig11a": _plain(E.run_fig11a()),
        "fig11b": _plain(E.run_fig11b()),
        "fig12": _plain(E.run_fig12()),
        "fig13": _plain(E.run_fig13()),
        "microbench": {
            "contention": _plain(E.run_contention_microbench()),
            "fusion": _plain(E.run_fusion_microbench()),
        },
    }
    if not fast:
        out["fig6"] = {
            method: _plain(history) for method, history in E.run_fig6().items()
        }
        out["fig7"] = {
            method: _plain(history) for method, history in E.run_fig7().items()
        }
    return out


def export_json(path: str, fast: bool = True) -> Dict[str, Any]:
    """Collect everything and write it to ``path``; returns the dict."""
    data = collect_all(fast=fast)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1)
    return data
