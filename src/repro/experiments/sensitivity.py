"""Calibration sensitivity analysis.

Because the wall-clock results come from a calibrated simulator, the
question a reviewer should ask is: *do the paper's conclusions survive
perturbing the calibration constants?* This driver re-runs Table III under
multiplicative perturbations of network alpha/beta, GPU efficiency, the
contention rate and the QR launch cost, and checks which of the paper's
ordering claims hold at each point.

The claims tested (all from Table III / §V-C):

1. ACP-SGD is fastest on every model;
2. S-SGD is slowest on both BERTs;
3. Power-SGD* beats Power-SGD on ResNet-152 but loses on both BERTs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.experiments.common import paper_rank, timing_specs
from repro.sim.calibration import GPUSpec, SimConfig
from repro.sim.strategies import ClusterSpec, simulate_iteration
from repro.comm.cost_model import LinkSpec
from repro.sim.calibration import LINK_10GBE

TABLE3_METHODS = ("ssgd", "powersgd", "powersgd_star", "acpsgd")


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbation and the ordering claims that held under it."""

    parameter: str
    factor: float
    claims_held: Dict[str, bool]

    @property
    def all_held(self) -> bool:
        return all(self.claims_held.values())


def _perturbed_config(parameter: str, factor: float) -> Tuple[SimConfig, LinkSpec]:
    sim = SimConfig()
    link = LINK_10GBE
    if parameter == "alpha":
        link = LinkSpec(link.name, link.alpha * factor, link.beta,
                        link.nominal_gbps)
    elif parameter == "beta":
        link = LinkSpec(link.name, link.alpha, link.beta * factor,
                        link.nominal_gbps)
    elif parameter == "gpu_efficiency":
        gpu = sim.gpu
        scaled = {kind: value * factor for kind, value in gpu.efficiency.items()}
        sim = replace(sim, gpu=GPUSpec(gpu.name, gpu.peak_flops, scaled,
                                       gpu.kernel_launch, gpu.memory_bandwidth))
    elif parameter == "contention_rate":
        sim = replace(sim, contention_rate=min(1.0, sim.contention_rate * factor))
    elif parameter == "qr_launch":
        sim = replace(sim, qr_launch=sim.qr_launch * factor)
    else:
        raise ValueError(f"unknown parameter {parameter!r}")
    return sim, link


def _check_claims(
    times: Dict[str, Dict[str, float]], tie_tolerance: float = 0.02
) -> Dict[str, bool]:
    """Evaluate the ordering claims, treating <=2% gaps as ties.

    The simulated Table III has genuine near-ties on ResNet-50 (ACP-SGD
    wins by ~2%, vs the paper's 13% margin); counting a 2% band as a tie
    keeps the sensitivity verdict about *orderings*, not about which side
    of a coin-flip cell a perturbation lands on.
    """
    claims = {}
    claims["acp_fastest_everywhere"] = all(
        times[model]["acpsgd"]
        <= (1.0 + tie_tolerance) * min(times[model].values())
        for model in times
    )
    claims["ssgd_slowest_on_berts"] = all(
        times[bert]["ssgd"] >= max(times[bert].values()) - 1e-9
        for bert in ("BERT-Base", "BERT-Large")
    )
    claims["contention_flip"] = (
        times["ResNet-152"]["powersgd_star"]
        <= (1.0 + tie_tolerance) * times["ResNet-152"]["powersgd"]
        and times["BERT-Base"]["powersgd_star"]
        >= (1.0 - tie_tolerance) * times["BERT-Base"]["powersgd"]
        and times["BERT-Large"]["powersgd_star"]
        >= (1.0 - tie_tolerance) * times["BERT-Large"]["powersgd"]
    )
    return claims


def run_sensitivity(
    parameters: Tuple[str, ...] = (
        "alpha", "beta", "gpu_efficiency", "contention_rate", "qr_launch",
    ),
    factors: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
) -> List[SensitivityPoint]:
    """Sweep perturbations and evaluate the ordering claims at each."""
    specs = timing_specs()
    points = []
    for parameter in parameters:
        for factor in factors:
            sim, link = _perturbed_config(parameter, factor)
            cluster = ClusterSpec(32, link)
            times: Dict[str, Dict[str, float]] = {}
            for name, spec in specs.items():
                times[name] = {
                    method: simulate_iteration(
                        method, spec, cluster=cluster, sim=sim,
                        rank=paper_rank(name),
                    ).total
                    for method in TABLE3_METHODS
                }
            points.append(
                SensitivityPoint(parameter, factor, _check_claims(times))
            )
    return points


def render(points: List[SensitivityPoint]) -> str:
    from repro.experiments.common import format_rows

    headers = ["parameter", "factor", "ACP fastest", "S-SGD slowest (BERTs)",
               "contention flip", "all"]
    body = []
    for point in points:
        body.append([
            point.parameter, f"x{point.factor:g}",
            "y" if point.claims_held["acp_fastest_everywhere"] else "N",
            "y" if point.claims_held["ssgd_slowest_on_berts"] else "N",
            "y" if point.claims_held["contention_flip"] else "N",
            "HOLDS" if point.all_held else "breaks",
        ])
    held = sum(1 for p in points if p.all_held)
    footer = f"\nall three claims hold at {held}/{len(points)} perturbation points"
    return format_rows(headers, body) + footer
