"""Shared constants and helpers for the experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.models import get_model_spec
from repro.models.registry import PAPER_RANKS
from repro.models.spec import ModelSpec
from repro.utils.formatting import render_table

# The paper's four timing-evaluation models (§III-A).
TIMING_MODELS = ("ResNet-50", "ResNet-152", "BERT-Base", "BERT-Large")

# Display names for methods.
METHOD_LABELS = {
    "ssgd": "S-SGD",
    "signsgd": "Sign-SGD",
    "topk": "Top-k SGD",
    "randomk": "Random-k SGD",
    "qsgd": "QSGD",
    "terngrad": "TernGrad",
    "dgc": "DGC Top-k",
    "powersgd": "Power-SGD",
    "powersgd_star": "Power-SGD*",
    "acpsgd": "ACP-SGD",
}


def paper_rank(model_name: str) -> int:
    """The paper's Power-SGD/ACP-SGD rank choice for this model."""
    return PAPER_RANKS[model_name]


def timing_specs() -> Dict[str, ModelSpec]:
    """Specs of the four timing models, keyed by name."""
    return {name: get_model_spec(name) for name in TIMING_MODELS}


def format_rows(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Alias of :func:`repro.utils.formatting.render_table`."""
    return render_table(headers, rows)
