"""Fig. 4 (and Fig. 1): schedule illustrations, regenerated from simulation.

The paper hand-draws how WFBP interacts with each method; we render the
*simulated* timelines as ASCII Gantt charts: (a) Power-SGD computing and
aggregating P/Q after back-propagation, (b) Power-SGD* overlapping hook
compression with BP (note the stretched backward on ``gpu`` while ``side``
is busy — the contention), and (c) ACP-SGD overlapping only all-reduces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import METHOD_LABELS, paper_rank
from repro.models import get_model_spec
from repro.sim.gantt import render_gantt
from repro.sim.strategies import ClusterSpec, simulate_iteration_records

FIG4_METHODS = ("powersgd", "powersgd_star", "acpsgd")


def run_fig4(
    model_name: str = "BERT-Base",
    cluster: ClusterSpec = ClusterSpec(),
    width: int = 78,
) -> List[Tuple[str, str]]:
    """Render (method, gantt) pairs for the three schedules of Fig. 4."""
    spec = get_model_spec(model_name)
    rank = paper_rank(model_name)
    charts = []
    for method in FIG4_METHODS:
        records = simulate_iteration_records(
            method, spec, cluster=cluster, rank=rank
        )
        charts.append((method, render_gantt(records, width=width)))
    return charts


def render(charts: List[Tuple[str, str]]) -> str:
    blocks = []
    for method, chart in charts:
        blocks.append(f"--- {METHOD_LABELS[method]} ---\n{chart}")
    return "\n\n".join(blocks)
