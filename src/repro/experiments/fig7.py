"""Fig. 7: ablation — ACP-SGD without error feedback or without reuse.

The paper shows both mechanisms are essential: disabling either degrades
convergence markedly relative to full ACP-SGD.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.fig6 import ConvergenceSetup, train_one
from repro.train.history import TrainingHistory


def run_fig7(setup: Optional[ConvergenceSetup] = None) -> Dict[str, TrainingHistory]:
    """Train ACP-SGD, ACP-SGD w/o EF, and ACP-SGD w/o reuse."""
    setup = setup or ConvergenceSetup()
    return {
        "acpsgd": train_one("acpsgd", setup, label="ACP-SGD"),
        "acpsgd_no_ef": train_one(
            "acpsgd", setup, {"use_error_feedback": False}, label="ACP-SGD w/o EF"
        ),
        "acpsgd_no_reuse": train_one(
            "acpsgd", setup, {"reuse_query": False}, label="ACP-SGD w/o reuse"
        ),
    }


def render(histories: Dict[str, TrainingHistory]) -> str:
    from repro.experiments.common import format_rows

    headers = ["Variant", "final acc", "best acc", "final loss"]
    body = [
        [h.method, f"{h.final_accuracy:.1%}", f"{h.best_accuracy:.1%}",
         f"{h.train_loss[-1]:.3f}"]
        for h in histories.values()
    ]
    return format_rows(headers, body)
