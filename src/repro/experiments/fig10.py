"""Fig. 10: effect of buffer size (WFBP/TF trade-off) on BERT-Large.

Buffer sizes from 0 (no TF, optimal WFBP) to 1500MB (full TF, no WFBP
overlap), for Power-SGD* and ACP-SGD at ranks 32 and 256. The paper's
takeaway: ACP-SGD's compressed-buffer scaling keeps the 25MB default near
optimal across ranks (~50% better than both extremes at rank 256).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import METHOD_LABELS, format_rows
from repro.models import get_model_spec
from repro.sim.strategies import ClusterSpec, SystemConfig, simulate_iteration

MB = 1024 * 1024
DEFAULT_BUFFERS_MB = (0, 1, 5, 25, 100, 500, 1500)
FIG10_RANKS = (32, 256)
FIG10_METHODS = ("powersgd_star", "acpsgd")


@dataclass(frozen=True)
class Fig10Row:
    """One (method, rank) sweep over buffer sizes (ms per buffer size)."""

    method: str
    rank: int
    times_ms: Dict[int, float]  # buffer MB -> iteration ms

    def robustness(self) -> float:
        """max/min over the sweep — smaller means flatter (more robust)."""
        values = list(self.times_ms.values())
        return max(values) / min(values)


def run_fig10(
    buffers_mb: Sequence[int] = DEFAULT_BUFFERS_MB,
    cluster: ClusterSpec = ClusterSpec(),
) -> List[Fig10Row]:
    """Sweep buffer size for Power-SGD* and ACP-SGD on BERT-Large."""
    spec = get_model_spec("BERT-Large")
    rows = []
    for rank in FIG10_RANKS:
        for method in FIG10_METHODS:
            times = {}
            for buf in buffers_mb:
                config = SystemConfig(
                    wfbp=True, tensor_fusion=buf > 0,
                    buffer_bytes=max(buf * MB, 1),
                )
                times[buf] = simulate_iteration(
                    method, spec, cluster=cluster, system=config, rank=rank
                ).milliseconds[0]
            rows.append(Fig10Row(method, rank, times))
    return rows


def render(rows: List[Fig10Row]) -> str:
    buffers = sorted(rows[0].times_ms)
    headers = ["Method", "rank"] + [f"{b}MB" for b in buffers] + ["max/min"]
    body = []
    for row in rows:
        body.append(
            [METHOD_LABELS[row.method], str(row.rank)]
            + [f"{row.times_ms[b]:.0f}" for b in buffers]
            + [f"{row.robustness():.2f}x"]
        )
    return format_rows(headers, body)
