"""Fig. 3: time breakdowns of the characterization methods.

ResNet-50 and BERT-Base, decomposed into FF&BP computation,
compression+decompression, and non-overlapped communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import METHOD_LABELS, format_rows, paper_rank
from repro.models import get_model_spec
from repro.sim.results import IterationBreakdown
from repro.sim.strategies import ClusterSpec, simulate_iteration

FIG3_MODELS = ("ResNet-50", "BERT-Base")
FIG3_METHODS = ("ssgd", "signsgd", "topk", "powersgd")


@dataclass(frozen=True)
class Fig3Row:
    """One (model, method) breakdown."""

    model: str
    method: str
    breakdown: IterationBreakdown


def run_fig3(cluster: ClusterSpec = ClusterSpec()) -> List[Fig3Row]:
    """Simulate the eight breakdown bars of Fig. 3."""
    rows = []
    for name in FIG3_MODELS:
        spec = get_model_spec(name)
        for method in FIG3_METHODS:
            breakdown = simulate_iteration(
                method, spec, cluster=cluster, rank=paper_rank(name)
            )
            rows.append(Fig3Row(name, method, breakdown))
    return rows


def render(rows: List[Fig3Row]) -> str:
    headers = ["Model", "Method", "total", "ff&bp", "compress", "comm (non-ovl)"]
    body = []
    for row in rows:
        total, ffbp, comp, comm = row.breakdown.milliseconds
        body.append([
            row.model, METHOD_LABELS[row.method],
            f"{total:.0f}ms", f"{ffbp:.0f}ms", f"{comp:.0f}ms", f"{comm:.0f}ms",
        ])
    return format_rows(headers, body)
