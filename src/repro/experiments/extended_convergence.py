"""Extended convergence comparison across every aggregation method.

A GRACE-style quality/traffic table (the paper's reference [29] builds a
framework for exactly such comparisons): every aggregator trains the same
model from the same initial weights on identical per-worker data streams;
we record final accuracy and the *measured* per-step wire traffic. The
workload is a small but non-trivial convnet classification task so the
compressors see realistic matrix-shaped gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_small_vgg
from repro.optim.aggregators import make_aggregator
from repro.optim.sgd import SGD
from repro.train.datasets import make_cifar_like
from repro.train.trainer import DataParallelTrainer

@dataclass(frozen=True)
class MethodSetup:
    """One method's tuned hyper-parameters for the comparison.

    Each method runs at its own practical learning rate (the paper's
    convergence study tunes per-method too — a single global LR would
    misrepresent the sign-family methods, whose unit-magnitude updates need
    far smaller steps).
    """

    method: str
    kwargs: Dict
    lr: float = 0.08
    momentum: float = 0.9


DEFAULT_METHODS: Tuple[MethodSetup, ...] = (
    MethodSetup("ssgd", {}),
    MethodSetup("signsgd", {}, lr=0.002),
    MethodSetup("topk", {"ratio": 0.05}),
    MethodSetup("dgc", {"ratio": 0.05}, momentum=0.0),  # DGC's own momentum
    MethodSetup("randomk", {"ratio": 0.1}, lr=0.02),
    MethodSetup("qsgd", {}),
    MethodSetup("terngrad", {}, lr=0.02),
    MethodSetup("powersgd", {"rank": 4}),
    MethodSetup("acpsgd", {"rank": 4}),
)


@dataclass(frozen=True)
class ExtendedRow:
    """One method's convergence/traffic summary."""

    method: str
    final_accuracy: float
    bytes_per_step: float


def run_extended_convergence(
    methods: Tuple[MethodSetup, ...] = DEFAULT_METHODS,
    world_size: int = 2,
    steps: int = 80,
    batch_size: int = 32,
    seed: int = 11,
) -> List[ExtendedRow]:
    """Train every method under identical conditions; returns summaries."""
    rows = []
    for setup in methods:
        train_data, test_data = make_cifar_like(
            num_train=1200, num_test=300, seed=seed
        )
        model = make_small_vgg(base_width=8, rng=np.random.default_rng(seed + 1))
        group = ProcessGroup(world_size)
        aggregator = make_aggregator(setup.method, group, **setup.kwargs)
        optimizer = SGD(model, lr=setup.lr, momentum=setup.momentum)
        trainer = DataParallelTrainer(
            model, optimizer, aggregator, train_data, test_data,
            batch_size_per_worker=batch_size, seed=seed + 2,
        )
        for _ in range(steps):
            trainer.train_step()
        rows.append(
            ExtendedRow(
                method=setup.method,
                final_accuracy=trainer.evaluate(),
                bytes_per_step=group.total_bytes() / steps,
            )
        )
    return rows


def render(rows: List[ExtendedRow]) -> str:
    from repro.experiments.common import METHOD_LABELS, format_rows
    from repro.utils.formatting import format_bytes

    ssgd = next((r for r in rows if r.method == "ssgd"), None)
    headers = ["Method", "final acc", "bytes/step", "traffic vs S-SGD"]
    body = []
    for row in rows:
        ratio = (
            f"{ssgd.bytes_per_step / row.bytes_per_step:.0f}x less"
            if ssgd and row.bytes_per_step > 0 else "-"
        )
        body.append([
            METHOD_LABELS.get(row.method, row.method),
            f"{row.final_accuracy:.1%}",
            format_bytes(row.bytes_per_step),
            ratio,
        ])
    return format_rows(headers, body)
