"""Fig. 6: convergence of S-SGD vs Power-SGD vs ACP-SGD.

The paper trains VGG-16 and ResNet-18 on CIFAR-10 (300 epochs, 4 GPUs,
rank 4) and finds all three reach the same final accuracy, with the
compressed methods slightly slower early on. We run the same comparison on
scaled-down models over the synthetic CIFAR-like dataset (see DESIGN.md §1)
— the claim under test is *relative*: final accuracies on par, compressed
methods lag early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.models.convnets import make_small_resnet, make_small_vgg
from repro.optim.aggregators import make_aggregator
from repro.optim.lr_scheduler import WarmupMultiStepSchedule
from repro.optim.sgd import SGD
from repro.train.datasets import make_cifar_like
from repro.train.history import TrainingHistory
from repro.train.trainer import DataParallelTrainer


@dataclass
class ConvergenceSetup:
    """Shared configuration of one convergence comparison."""

    model_family: str = "vgg"  # "vgg", "resnet" or "transformer"
    world_size: int = 4
    epochs: int = 6
    steps_per_epoch: int = 12
    batch_size: int = 32
    base_lr: float = 0.05
    rank: int = 4
    num_train: int = 1600
    num_test: int = 400
    seed: int = 7


def _build_model(setup: ConvergenceSetup, rng: np.random.Generator):
    if setup.model_family == "vgg":
        return make_small_vgg(base_width=8, rng=rng)
    if setup.model_family == "resnet":
        return make_small_resnet(base_width=8, blocks_per_stage=1, rng=rng)
    if setup.model_family == "transformer":
        from repro.models.transformer import make_tiny_bert

        return make_tiny_bert(vocab_size=48, hidden=24, num_layers=2,
                              num_heads=4, max_seq=16, num_classes=10,
                              rng=rng)
    raise ValueError(f"unknown model family {setup.model_family!r}")


def _build_data(setup: ConvergenceSetup):
    if setup.model_family == "transformer":
        from repro.train.datasets import make_token_classification

        return make_token_classification(
            num_train=setup.num_train, num_test=setup.num_test,
            vocab_size=48, seq_len=16, num_classes=10, seed=setup.seed,
        )
    return make_cifar_like(
        num_train=setup.num_train, num_test=setup.num_test, seed=setup.seed
    )


def train_one(
    method: str,
    setup: ConvergenceSetup,
    aggregator_kwargs: Optional[Dict] = None,
    label: str = "",
) -> TrainingHistory:
    """Train one method under the shared setup; returns its curve.

    All methods start from identical weights (same model seed) and draw
    identical per-worker data streams (same trainer seed), so curve
    differences are attributable to the aggregation algorithm alone.
    """
    aggregator_kwargs = dict(aggregator_kwargs or {})
    train_data, test_data = _build_data(setup)
    model = _build_model(setup, np.random.default_rng(setup.seed + 1))
    group = ProcessGroup(setup.world_size)
    if method in ("powersgd", "acpsgd"):
        aggregator_kwargs.setdefault("rank", setup.rank)
    aggregator = make_aggregator(method, group, **aggregator_kwargs)
    optimizer = SGD(model, lr=setup.base_lr, momentum=0.9)
    schedule = WarmupMultiStepSchedule(
        optimizer,
        base_lr=setup.base_lr,
        total_epochs=setup.epochs,
        warmup_epochs=max(1.0, setup.epochs / 60.0),
        milestones=(setup.epochs * 0.5, setup.epochs * 0.75),
    )
    trainer = DataParallelTrainer(
        model, optimizer, aggregator, train_data, test_data,
        batch_size_per_worker=setup.batch_size, schedule=schedule,
        seed=setup.seed + 2,
    )
    return trainer.run(setup.epochs, setup.steps_per_epoch, method_label=label or method)


def run_fig6(setup: Optional[ConvergenceSetup] = None) -> Dict[str, TrainingHistory]:
    """Train S-SGD / Power-SGD / ACP-SGD under identical conditions."""
    setup = setup or ConvergenceSetup()
    return {
        method: train_one(method, setup)
        for method in ("ssgd", "powersgd", "acpsgd")
    }


def render(histories: Dict[str, TrainingHistory]) -> str:
    from repro.experiments.common import METHOD_LABELS, format_rows

    headers = ["Method", "final acc", "best acc", "final loss"]
    body = [
        [METHOD_LABELS.get(m, m), f"{h.final_accuracy:.1%}",
         f"{h.best_accuracy:.1%}", f"{h.train_loss[-1]:.3f}"]
        for m, h in histories.items()
    ]
    return format_rows(headers, body)
