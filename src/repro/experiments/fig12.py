"""Fig. 12: effect of the number of GPUs (8 -> 64), BERT-Base on 10GbE.

The paper's takeaway: all three methods scale well thanks to ring
all-reduce + tensor fusion — only a 10% / 24% / 8% iteration-time increase
from 8 to 64 GPUs for S-SGD / Power-SGD / ACP-SGD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import METHOD_LABELS, format_rows, paper_rank
from repro.models import get_model_spec
from repro.sim.strategies import ClusterSpec, simulate_iteration

FIG12_METHODS = ("ssgd", "powersgd", "acpsgd")


@dataclass(frozen=True)
class Fig12Row:
    """Iteration times at one cluster size."""

    world_size: int
    times_ms: Dict[str, float]


def run_fig12(
    world_sizes: Sequence[int] = (8, 16, 32, 64),
    model_name: str = "BERT-Base",
) -> List[Fig12Row]:
    """GPU-count sweep."""
    spec = get_model_spec(model_name)
    rank = paper_rank(model_name)
    rows = []
    for world in world_sizes:
        times = {
            method: simulate_iteration(
                method, spec, cluster=ClusterSpec(world_size=world), rank=rank
            ).milliseconds[0]
            for method in FIG12_METHODS
        }
        rows.append(Fig12Row(world, times))
    return rows


def scaling_increase(rows: List[Fig12Row]) -> Dict[str, float]:
    """Relative iteration-time increase from the smallest to largest cluster."""
    first, last = rows[0], rows[-1]
    return {
        method: last.times_ms[method] / first.times_ms[method] - 1.0
        for method in FIG12_METHODS
    }


def render(rows: List[Fig12Row]) -> str:
    headers = ["#GPUs"] + [METHOD_LABELS[m] for m in FIG12_METHODS]
    body = [
        [str(r.world_size)] + [f"{r.times_ms[m]:.0f}ms" for m in FIG12_METHODS]
        for r in rows
    ]
    increases = scaling_increase(rows)
    footer = "\nincrease 8->64: " + ", ".join(
        f"{METHOD_LABELS[m]} +{v:.0%}" for m, v in increases.items()
    ) + "  (paper: +10% / +24% / +8%)"
    return format_rows(headers, body) + footer
