"""Microbenchmarks reproducing the paper's in-text anchor measurements.

1. **Single-GPU WFBP contention** (§III-C): "Power-SGD with WFBP causes an
   overall of 13% slowdown than Power-SGD without WFBP, when training
   ResNet-50 on one GPU (with only computation tasks)."
2. **Fused vs unfused all-reduce** (§IV-B): ResNet-50's gradients take
   ~243ms all-reduced tensor-by-tensor vs ~169ms fused; ACP-SGD's
   compressed tensors take ~55.9ms separate vs ~2.3ms fused (24.3x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.comm.cost_model import allreduce_time
from repro.compression.reshaping import matrix_view_shape, should_compress
from repro.models import get_model_spec
from repro.sim.calibration import LINK_10GBE
from repro.sim.strategies import ClusterSpec, SystemConfig, simulate_iteration


@dataclass(frozen=True)
class ContentionResult:
    """Power-SGD on one GPU: hook overlap vs post-BP compression."""

    no_wfbp_ms: float
    wfbp_ms: float

    @property
    def slowdown(self) -> float:
        """wfbp / no_wfbp (paper: ~1.13 on ResNet-50)."""
        return self.wfbp_ms / self.no_wfbp_ms


def run_contention_microbench(model_name: str = "ResNet-50") -> ContentionResult:
    """One-GPU Power-SGD, WFBP on vs off. No communication (p=1)."""
    spec = get_model_spec(model_name)
    cluster = ClusterSpec(world_size=1)
    # Per-tensor hooks (no TF) — the fine-grained overlap the paper measured.
    no_wfbp = simulate_iteration(
        "powersgd_star", spec, cluster=cluster,
        system=SystemConfig(wfbp=False, tensor_fusion=False), rank=4,
    )
    wfbp = simulate_iteration(
        "powersgd_star", spec, cluster=cluster,
        system=SystemConfig(wfbp=True, tensor_fusion=False), rank=4,
    )
    return ContentionResult(no_wfbp.milliseconds[0], wfbp.milliseconds[0])


@dataclass(frozen=True)
class FusionResult:
    """Separate vs fused all-reduce wall times (ms)."""

    label: str
    separate_ms: float
    fused_ms: float

    @property
    def speedup(self) -> float:
        return self.separate_ms / self.fused_ms


def run_fusion_microbench(world_size: int = 32) -> Dict[str, FusionResult]:
    """Fused-vs-separate all-reduce for ResNet-50's raw and P-compressed
    gradients on 10GbE (the §IV-B anchor numbers)."""
    spec = get_model_spec("ResNet-50")
    link = LINK_10GBE
    raw_sizes = [t.nbytes for t in spec.tensors()]
    raw_separate = sum(allreduce_time(s, world_size, link) for s in raw_sizes)
    raw_fused = allreduce_time(sum(raw_sizes), world_size, link)

    p_sizes = []
    for tensor in spec.tensors():
        if should_compress(tensor.shape):
            n, m = matrix_view_shape(tensor.shape)
            r = min(4, n, m)
            if n * m > (n + m) * r:
                p_sizes.append(n * r * 4)
    p_separate = sum(allreduce_time(s, world_size, link) for s in p_sizes)
    p_fused = allreduce_time(sum(p_sizes), world_size, link)
    return {
        "raw": FusionResult("ResNet-50 gradients", raw_separate * 1e3, raw_fused * 1e3),
        "compressed": FusionResult("ACP-SGD P factors (r=4)",
                                   p_separate * 1e3, p_fused * 1e3),
    }
