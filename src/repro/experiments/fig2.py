"""Fig. 2: iteration time of S-SGD, Sign-SGD, Top-k SGD, Power-SGD.

32 GPUs on 10GbE, the paper's batch sizes and compression settings
(Sign 32x, Top-k 0.1%, Power-SGD r=4 for ResNets / r=32 for BERTs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    METHOD_LABELS,
    TIMING_MODELS,
    format_rows,
    paper_rank,
    timing_specs,
)
from repro.sim.strategies import ClusterSpec, simulate_iteration

FIG2_METHODS = ("ssgd", "signsgd", "topk", "powersgd")

# Qualitative anchors from the paper's text (§III-B).
PAPER_ANCHORS = {
    ("ResNet-50", "signsgd"): 1.70,  # x S-SGD
    ("ResNet-50", "topk"): 1.66,  # x S-SGD
}


@dataclass(frozen=True)
class Fig2Row:
    """One model's iteration times (ms) for the four methods.

    ``oom`` marks configurations the memory model predicts exceed the
    testbed's 11GB cards — the paper marks Sign-SGD on BERT-Large this way.
    """

    model: str
    times_ms: Dict[str, float]
    oom: Dict[str, bool]

    def ratio_to_ssgd(self, method: str) -> float:
        return self.times_ms[method] / self.times_ms["ssgd"]


def run_fig2(cluster: ClusterSpec = ClusterSpec()) -> List[Fig2Row]:
    """Simulate Fig. 2's 16 bars (with OOM flags from the memory model)."""
    from repro.sim.memory import estimate_memory

    rows = []
    for name, spec in timing_specs().items():
        times = {}
        oom = {}
        for method in FIG2_METHODS:
            times[method] = simulate_iteration(
                method, spec, cluster=cluster, rank=paper_rank(name)
            ).milliseconds[0]
            oom[method] = not estimate_memory(
                method, spec, spec.default_batch_size, cluster.world_size,
                rank=paper_rank(name),
            ).fits()
        rows.append(Fig2Row(name, times, oom))
    return rows


def render(rows: List[Fig2Row]) -> str:
    headers = ["Model"] + [METHOD_LABELS[m] for m in FIG2_METHODS] + ["sign/topk x S-SGD"]
    body = []
    for row in rows:
        cells = [row.model]
        for method in FIG2_METHODS:
            label = f"{row.times_ms[method]:.0f}ms"
            if row.oom[method]:
                label += " (OOM)"
            cells.append(label)
        cells.append(
            f"{row.ratio_to_ssgd('signsgd'):.2f}x / {row.ratio_to_ssgd('topk'):.2f}x"
        )
        body.append(cells)
    return format_rows(headers, body)
