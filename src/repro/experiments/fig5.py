"""Fig. 5: CDF of tensor sizes, uncompressed (M) vs compressed (P and Q).

The paper's point: after low-rank decomposition the tensors to communicate
get much smaller (a ~30% increase in the proportion of tensors under 1e4 /
1e5 parameters for ResNet-50 / BERT-Base), which is why tensor fusion is
essential for ACP-SGD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.compression.reshaping import matrix_view_shape, should_compress
from repro.experiments.common import format_rows, paper_rank
from repro.models import get_model_spec


@dataclass(frozen=True)
class Fig5Data:
    """Sorted tensor sizes (elements) for one model."""

    model: str
    rank: int
    uncompressed_sizes: Tuple[int, ...]
    compressed_sizes: Tuple[int, ...]  # P and Q factor sizes interleaved

    def cdf_at(self, threshold: float, compressed: bool) -> float:
        """Fraction of tensors with <= threshold parameters."""
        sizes = self.compressed_sizes if compressed else self.uncompressed_sizes
        arr = np.asarray(sizes)
        if arr.size == 0:
            return 0.0
        return float((arr <= threshold).mean())


def run_fig5(models: Tuple[str, ...] = ("ResNet-50", "BERT-Base")) -> List[Fig5Data]:
    """Collect tensor-size distributions (M vs P,Q) per model."""
    out = []
    for name in models:
        spec = get_model_spec(name)
        rank = paper_rank(name)
        uncompressed: List[int] = []
        compressed: List[int] = []
        for tensor in spec.tensors():
            uncompressed.append(tensor.size)
            if should_compress(tensor.shape):
                n, m = matrix_view_shape(tensor.shape)
                r = min(rank, n, m)
                if n * m > (n + m) * r:
                    compressed.append(n * r)  # P
                    compressed.append(m * r)  # Q
                    continue
            compressed.append(tensor.size)  # travels as-is
        out.append(
            Fig5Data(name, rank, tuple(sorted(uncompressed)), tuple(sorted(compressed)))
        )
    return out


def render(data: List[Fig5Data]) -> str:
    headers = ["Model", "threshold", "CDF(M)", "CDF(P,Q)", "increase"]
    body = []
    for item in data:
        threshold = 1e4 if "ResNet" in item.model else 1e5
        cdf_m = item.cdf_at(threshold, compressed=False)
        cdf_pq = item.cdf_at(threshold, compressed=True)
        body.append([
            item.model, f"1e{int(np.log10(threshold))}",
            f"{cdf_m:.0%}", f"{cdf_pq:.0%}", f"+{cdf_pq - cdf_m:.0%}",
        ])
    return format_rows(headers, body)
