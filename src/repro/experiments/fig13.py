"""Fig. 13: effect of network bandwidth (1GbE / 10GbE / 100Gb IB), 32 GPUs.

Paper anchors: on 1GbE, Power-SGD/ACP-SGD reach 5.7x/7.1x over S-SGD on
ResNet-50 and 11.2x/23.9x on BERT-Base; on 100Gb IB ACP-SGD still gives
~40% on BERT-Base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import METHOD_LABELS, format_rows, paper_rank
from repro.models import get_model_spec
from repro.sim.calibration import SIM_LINKS
from repro.sim.strategies import ClusterSpec, simulate_iteration

FIG13_MODELS = ("ResNet-50", "ResNet-152", "BERT-Base", "BERT-Large")
FIG13_METHODS = ("ssgd", "powersgd", "acpsgd")


@dataclass(frozen=True)
class Fig13Row:
    """One (link, model)'s iteration times."""

    link: str
    model: str
    times_ms: Dict[str, float]

    def speedup(self, method: str) -> float:
        return self.times_ms["ssgd"] / self.times_ms[method]


def run_fig13(
    links: Sequence[str] = ("1GbE", "10GbE", "100GbIB"),
    models: Sequence[str] = FIG13_MODELS,
    world_size: int = 32,
) -> List[Fig13Row]:
    """Bandwidth sweep."""
    rows = []
    for link_name in links:
        link = SIM_LINKS[link_name]
        for model_name in models:
            spec = get_model_spec(model_name)
            times = {
                method: simulate_iteration(
                    method, spec, cluster=ClusterSpec(world_size, link),
                    rank=paper_rank(model_name),
                ).milliseconds[0]
                for method in FIG13_METHODS
            }
            rows.append(Fig13Row(link_name, model_name, times))
    return rows


def render(rows: List[Fig13Row]) -> str:
    headers = ["Link", "Model", "S-SGD", "Power-SGD", "ACP-SGD",
               "Power x", "ACP x"]
    body = [
        [r.link, r.model,
         f"{r.times_ms['ssgd']:.0f}ms", f"{r.times_ms['powersgd']:.0f}ms",
         f"{r.times_ms['acpsgd']:.0f}ms",
         f"{r.speedup('powersgd'):.1f}x", f"{r.speedup('acpsgd'):.1f}x"]
        for r in rows
    ]
    return format_rows(headers, body)
