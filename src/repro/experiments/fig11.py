"""Fig. 11: effect of hyper-parameters — batch size and rank.

(a) ResNet-152 with per-GPU batch 16 vs 32: ACP-SGD wins at both; larger
batches shrink the gap to S-SGD (better computation/communication ratio).
(b) BERT-Large with rank 32..256: both low-rank methods slow down with
rank, but ACP-SGD overlaps more as rank grows (1.9x -> 2.7x over
Power-SGD in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import METHOD_LABELS, format_rows
from repro.models import get_model_spec
from repro.sim.strategies import ClusterSpec, simulate_iteration


@dataclass(frozen=True)
class Fig11aRow:
    """ResNet-152 iteration times at one batch size."""

    batch_size: int
    times_ms: Dict[str, float]

    def speedup(self, baseline: str) -> float:
        return self.times_ms[baseline] / self.times_ms["acpsgd"]


@dataclass(frozen=True)
class Fig11bRow:
    """BERT-Large Power-SGD vs ACP-SGD times at one rank."""

    rank: int
    times_ms: Dict[str, float]

    @property
    def acp_speedup(self) -> float:
        return self.times_ms["powersgd"] / self.times_ms["acpsgd"]


def run_fig11a(
    batch_sizes: Sequence[int] = (16, 32),
    cluster: ClusterSpec = ClusterSpec(),
) -> List[Fig11aRow]:
    """Batch-size sweep on ResNet-152 (rank 4)."""
    spec = get_model_spec("ResNet-152")
    rows = []
    for batch in batch_sizes:
        times = {
            method: simulate_iteration(
                method, spec, cluster=cluster, batch_size=batch, rank=4
            ).milliseconds[0]
            for method in ("ssgd", "powersgd", "acpsgd")
        }
        rows.append(Fig11aRow(batch, times))
    return rows


def run_fig11b(
    ranks: Sequence[int] = (32, 64, 128, 256),
    cluster: ClusterSpec = ClusterSpec(),
) -> List[Fig11bRow]:
    """Rank sweep on BERT-Large."""
    spec = get_model_spec("BERT-Large")
    rows = []
    for rank in ranks:
        times = {
            method: simulate_iteration(
                method, spec, cluster=cluster, rank=rank
            ).milliseconds[0]
            for method in ("powersgd", "acpsgd")
        }
        rows.append(Fig11bRow(rank, times))
    return rows


def render_a(rows: List[Fig11aRow]) -> str:
    headers = ["batch", "S-SGD", "Power-SGD", "ACP-SGD",
               "ACP x over S-SGD", "ACP x over Power-SGD"]
    body = [
        [str(r.batch_size),
         f"{r.times_ms['ssgd']:.0f}ms", f"{r.times_ms['powersgd']:.0f}ms",
         f"{r.times_ms['acpsgd']:.0f}ms",
         f"{r.speedup('ssgd'):.1f}x", f"{r.speedup('powersgd'):.1f}x"]
        for r in rows
    ]
    return format_rows(headers, body)


def render_b(rows: List[Fig11bRow]) -> str:
    headers = ["rank", "Power-SGD", "ACP-SGD", "ACP speedup"]
    body = [
        [str(r.rank), f"{r.times_ms['powersgd']:.0f}ms",
         f"{r.times_ms['acpsgd']:.0f}ms", f"{r.acp_speedup:.1f}x"]
        for r in rows
    ]
    return format_rows(headers, body)
