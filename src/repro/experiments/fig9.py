"""Fig. 9: benefits of system optimizations (WFBP, TF) step by step.

Three variants per method on ResNet-152 and BERT-Large: Naive (no WFBP,
no TF), +WFBP, +WFBP+TF. The paper's findings: WFBP gives S-SGD/ACP-SGD
~12%, hurts Power-SGD (GPU contention); TF then gives 1.28x / 2.16x /
1.56x over WFBP-only; ACP-SGD reaches up to 2.14x over its naive variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import METHOD_LABELS, format_rows, paper_rank
from repro.models import get_model_spec
from repro.sim.strategies import ClusterSpec, SystemConfig, simulate_iteration

FIG9_MODELS = ("ResNet-152", "BERT-Large")
FIG9_METHODS = ("ssgd", "powersgd_star", "acpsgd")
VARIANTS = (
    ("naive", SystemConfig(wfbp=False, tensor_fusion=False)),
    ("wfbp", SystemConfig(wfbp=True, tensor_fusion=False)),
    ("wfbp+tf", SystemConfig(wfbp=True, tensor_fusion=True)),
)


@dataclass(frozen=True)
class Fig9Row:
    """One (model, method)'s three variant times in ms."""

    model: str
    method: str
    times_ms: Dict[str, float]

    @property
    def tf_speedup_over_wfbp(self) -> float:
        return self.times_ms["wfbp"] / self.times_ms["wfbp+tf"]

    @property
    def full_speedup_over_naive(self) -> float:
        return self.times_ms["naive"] / self.times_ms["wfbp+tf"]


def run_fig9(cluster: ClusterSpec = ClusterSpec()) -> List[Fig9Row]:
    """Simulate the 3x3x2 grid of Fig. 9."""
    rows = []
    for name in FIG9_MODELS:
        spec = get_model_spec(name)
        for method in FIG9_METHODS:
            times = {
                label: simulate_iteration(
                    method, spec, cluster=cluster, system=config,
                    rank=paper_rank(name),
                ).milliseconds[0]
                for label, config in VARIANTS
            }
            rows.append(Fig9Row(name, method, times))
    return rows


def render(rows: List[Fig9Row]) -> str:
    headers = ["Model", "Method", "Naive", "+WFBP", "+WFBP+TF",
               "TF x over WFBP", "full x over naive"]
    body = []
    for row in rows:
        body.append([
            row.model, METHOD_LABELS[row.method],
            f"{row.times_ms['naive']:.0f}ms",
            f"{row.times_ms['wfbp']:.0f}ms",
            f"{row.times_ms['wfbp+tf']:.0f}ms",
            f"{row.tf_speedup_over_wfbp:.2f}x",
            f"{row.full_speedup_over_naive:.2f}x",
        ])
    return format_rows(headers, body)
