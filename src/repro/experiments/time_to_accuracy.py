"""Time-to-accuracy synthesis: convergence x wall-clock.

The paper argues two things separately: ACP-SGD (i) reaches the same
accuracy as S-SGD in the same number of *iterations* (Fig. 6) and (ii)
runs each iteration much faster (Table III). The metric a user cares about
is their product — wall-clock time to a target accuracy. This driver
combines the measured convergence curves (miniature task) with the
simulated per-iteration times (paper models):

    estimated speedup = (iters_method / iters_ssgd)^-1
                        x (t_iter_ssgd / t_iter_method)

The iteration-overhead factor comes from real training; the per-iteration
ratio from the calibrated simulator. Presented as an estimate — the
overhead factor is measured at miniature scale, where compressed methods'
early-stage lag (visible in the paper's Fig. 6 too) weighs heavier than at
the paper's 300-epoch budget, making the estimate *conservative* for
ACP-SGD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import paper_rank
from repro.experiments.fig6 import ConvergenceSetup, run_fig6
from repro.models import get_model_spec
from repro.sim.strategies import ClusterSpec, simulate_iteration

TTA_METHODS = ("ssgd", "powersgd", "acpsgd")


@dataclass(frozen=True)
class TTARow:
    """One method's time-to-accuracy estimate."""

    method: str
    steps_to_target: Optional[int]  # None = target not reached in budget
    iteration_ms: float

    def estimated_time_s(self) -> Optional[float]:
        if self.steps_to_target is None:
            return None
        return self.steps_to_target * self.iteration_ms / 1e3


def _steps_to_target(history, threshold: float, steps_per_epoch: int) -> Optional[int]:
    for epoch, accuracy in zip(history.epochs, history.test_accuracy):
        if accuracy >= threshold:
            return (epoch + 1) * steps_per_epoch
    return None


def run_time_to_accuracy(
    setup: Optional[ConvergenceSetup] = None,
    model_name: str = "BERT-Large",
    cluster: ClusterSpec = ClusterSpec(),
    threshold: float = 0.6,
) -> List[TTARow]:
    """Estimate wall-clock-to-accuracy for S-SGD / Power-SGD / ACP-SGD.

    Args:
        setup: miniature convergence configuration (drives the
            iteration-overhead factor).
        model_name: paper model whose simulated iteration time scales the
            estimate.
        cluster: simulated cluster.
        threshold: target test accuracy on the miniature task.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    setup = setup or ConvergenceSetup()
    histories = run_fig6(setup)
    spec = get_model_spec(model_name)
    rows = []
    for method in TTA_METHODS:
        iteration_ms = simulate_iteration(
            method, spec, cluster=cluster, rank=paper_rank(model_name)
        ).milliseconds[0]
        steps = _steps_to_target(
            histories[method], threshold, setup.steps_per_epoch
        )
        rows.append(TTARow(method, steps, iteration_ms))
    return rows


def render(rows: List[TTARow], model_name: str = "BERT-Large") -> str:
    from repro.experiments.common import METHOD_LABELS, format_rows

    ssgd = next(r for r in rows if r.method == "ssgd")
    body = []
    for row in rows:
        time_s = row.estimated_time_s()
        base = ssgd.estimated_time_s()
        speedup = (
            f"{base / time_s:.1f}x" if time_s and base else "-"
        )
        body.append([
            METHOD_LABELS[row.method],
            str(row.steps_to_target) if row.steps_to_target else "not reached",
            f"{row.iteration_ms:.0f}ms",
            f"{time_s:.0f}s" if time_s else "-",
            speedup,
        ])
    header = (
        f"Estimated time-to-accuracy ({model_name} iteration times x "
        "miniature-task iteration counts):"
    )
    return header + "\n" + format_rows(
        ["Method", "steps to target", "iter time", "est. wall-clock", "speedup"],
        body,
    )
