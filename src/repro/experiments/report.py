"""Full-evaluation report: every table/figure, paper-style, in one call.

Shared by ``examples/paper_evaluation.py`` and ``python -m repro evaluate``.
"""

from __future__ import annotations

import time
from typing import Callable, List


def render_full_report(fast: bool = False, emit: Callable[[str], None] = print) -> None:
    """Run every experiment driver and emit the rendered artifacts.

    Args:
        fast: skip the convergence figures (they train real models and take
            minutes; everything else finishes in seconds).
        emit: sink for output lines (default: print).
    """
    import repro.experiments as E
    from repro.experiments import (
        fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12,
        fig13, table1, table2, table3,
    )

    def section(title: str) -> None:
        emit(f"\n{'=' * 72}\n{title}\n{'=' * 72}")

    started = time.time()
    section("Table I — model statistics and compression ratios")
    emit(table1.render(E.run_table1()))

    section("Table II — communication complexity, analytic vs measured")
    emit(table2.render(E.run_table2()))

    section("Fig. 2 — iteration time of four methods (32 GPUs, 10GbE)")
    emit(fig2.render(E.run_fig2()))

    section("Fig. 3 — time breakdowns of the characterization methods")
    emit(fig3.render(E.run_fig3()))

    section("Fig. 4 — WFBP schedules, regenerated from simulation (BERT-Base)")
    emit(fig4.render(E.run_fig4()))

    section("Fig. 5 — CDF of tensor sizes (M vs P,Q)")
    emit(fig5.render(E.run_fig5()))

    if not fast:
        section("Fig. 6 — convergence (synthetic CIFAR-like substitute)")
        emit(fig6.render(E.run_fig6()))
        section("Fig. 7 — ACP-SGD ablation (error feedback / reuse)")
        emit(fig7.render(E.run_fig7()))

    section("Table III — iteration time incl. Power-SGD*")
    emit(table3.render(E.run_table3()))

    section("Fig. 8 — breakdowns of the evaluation methods")
    emit(fig8.render(E.run_fig8()))

    section("Fig. 9 — benefits of WFBP and tensor fusion")
    emit(fig9.render(E.run_fig9()))

    section("Fig. 10 — buffer-size sensitivity (BERT-Large)")
    emit(fig10.render(E.run_fig10()))

    section("Fig. 11 — batch-size and rank effects")
    emit(fig11.render_a(E.run_fig11a()))
    emit("")
    emit(fig11.render_b(E.run_fig11b()))

    section("Fig. 12 — scaling from 8 to 64 GPUs")
    emit(fig12.render(E.run_fig12()))

    section("Fig. 13 — effect of network bandwidth")
    emit(fig13.render(E.run_fig13()))

    section("Microbenchmarks — in-text anchors")
    contention = E.run_contention_microbench()
    emit(f"1-GPU Power-SGD WFBP slowdown: {contention.slowdown:.2f}x "
         f"(paper: ~1.13x)")
    for result in E.run_fusion_microbench().values():
        emit(f"fusion [{result.label}]: separate {result.separate_ms:.1f}ms "
             f"-> fused {result.fused_ms:.1f}ms ({result.speedup:.1f}x)")

    emit(f"\nDone in {time.time() - started:.0f}s.")
