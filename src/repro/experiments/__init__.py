"""Experiment drivers — one per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function returning structured rows plus a
``render`` helper that prints them in the paper's presentation, so the
benchmark suite (and EXPERIMENTS.md) can compare side by side:

========  =====================================================  ==========
ID        Paper artifact                                         Module
========  =====================================================  ==========
Table I   model stats & compression ratios                       table1
Table II  compress/communicate complexity (analytic + measured)  table2
Fig. 2    iteration time of 4 methods x 4 models                 fig2
Fig. 3    time breakdowns (ResNet-50, BERT-Base)                 fig3
Fig. 5    CDF of tensor sizes (M vs P,Q)                         fig5
Fig. 6    convergence S-SGD / Power-SGD / ACP-SGD                fig6
Fig. 7    ablation: no error-feedback / no reuse                 fig7
Table III iteration time incl. Power-SGD*                        table3
Fig. 8    breakdowns of the four methods                         fig8
Fig. 9    Naive / +WFBP / +WFBP+TF                               fig9
Fig. 10   buffer-size sweep                                      fig10
Fig. 11   batch-size and rank sweeps                             fig11
Fig. 12   scaling 8 -> 64 GPUs                                   fig12
Fig. 13   1GbE / 10GbE / 100Gb IB                                fig13
(extra)   single-GPU WFBP contention microbenchmark              microbench
========  =====================================================  ==========
"""

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.table3 import run_table3
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11a, run_fig11b
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.microbench import run_contention_microbench, run_fusion_microbench
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.extended_convergence import run_extended_convergence
from repro.experiments.time_to_accuracy import run_time_to_accuracy

__all__ = [
    "run_table1",
    "run_table2",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table3",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11a",
    "run_fig11b",
    "run_fig12",
    "run_fig13",
    "run_contention_microbench",
    "run_fusion_microbench",
    "run_sensitivity",
    "run_extended_convergence",
    "run_time_to_accuracy",
]
