"""Table I: model statistics and compression ratios."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.compression.ratios import compression_ratio
from repro.experiments.common import TIMING_MODELS, format_rows, paper_rank, timing_specs

# Paper's Table I for comparison in EXPERIMENTS.md.
PAPER_TABLE1 = {
    "ResNet-50": (25.6, 32, 1000, 67),
    "ResNet-152": (60.2, 32, 1000, 53),
    "BERT-Base": (110.1, 32, 1000, 16),
    "BERT-Large": (336.2, 32, 1000, 21),
}


@dataclass(frozen=True)
class Table1Row:
    """One model's statistics and per-method compression ratios."""

    model: str
    params_millions: float
    rank: int
    signsgd_ratio: float
    topk_ratio: float
    powersgd_ratio: float
    acpsgd_ratio: float


def run_table1() -> List[Table1Row]:
    """Compute Table I from the shape-level model specs."""
    rows = []
    for name, spec in timing_specs().items():
        shapes = spec.parameter_shapes()
        rank = paper_rank(name)
        rows.append(
            Table1Row(
                model=name,
                params_millions=spec.num_parameters / 1e6,
                rank=rank,
                signsgd_ratio=compression_ratio(shapes, "signsgd"),
                topk_ratio=compression_ratio(shapes, "topk", ratio=0.001),
                powersgd_ratio=compression_ratio(shapes, "powersgd", rank=rank),
                acpsgd_ratio=compression_ratio(shapes, "acpsgd", rank=rank),
            )
        )
    return rows


def render(rows: List[Table1Row]) -> str:
    """Paper-style rendering with the paper's own values alongside."""
    headers = ["Model", "#Param.(M)", "Sign-SGD", "Top-k", "Power-SGD (r)",
               "ACP-SGD", "paper: params/power"]
    body = []
    for row in rows:
        paper = PAPER_TABLE1[row.model]
        body.append([
            row.model,
            f"{row.params_millions:.1f}",
            f"{row.signsgd_ratio:.0f}x",
            f"{row.topk_ratio:.0f}x",
            f"{row.powersgd_ratio:.0f}x (r={row.rank})",
            f"{row.acpsgd_ratio:.0f}x",
            f"{paper[0]}M / {paper[3]}x",
        ])
    return format_rows(headers, body)
