"""Table III: iteration time of S-SGD, Power-SGD, Power-SGD*, ACP-SGD."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    METHOD_LABELS,
    format_rows,
    paper_rank,
    timing_specs,
)
from repro.sim.strategies import ClusterSpec, simulate_iteration

TABLE3_METHODS = ("ssgd", "powersgd", "powersgd_star", "acpsgd")

# The paper's Table III (milliseconds), for EXPERIMENTS.md comparison.
PAPER_TABLE3 = {
    "ResNet-50": {"ssgd": 266, "powersgd": 302, "powersgd_star": 286, "acpsgd": 248},
    "ResNet-152": {"ssgd": 500, "powersgd": 423, "powersgd_star": 404, "acpsgd": 316},
    "BERT-Base": {"ssgd": 805, "powersgd": 236, "powersgd_star": 292, "acpsgd": 193},
    "BERT-Large": {"ssgd": 2307, "powersgd": 392, "powersgd_star": 516, "acpsgd": 245},
}


@dataclass(frozen=True)
class Table3Row:
    """One model's iteration times in milliseconds."""

    model: str
    times_ms: Dict[str, float]

    def speedup_over(self, baseline: str, method: str = "acpsgd") -> float:
        """e.g. ACP-SGD's speedup over S-SGD."""
        return self.times_ms[baseline] / self.times_ms[method]


def run_table3(cluster: ClusterSpec = ClusterSpec()) -> List[Table3Row]:
    """Simulate Table III's 16 cells."""
    rows = []
    for name, spec in timing_specs().items():
        times = {
            method: simulate_iteration(
                method, spec, cluster=cluster, rank=paper_rank(name)
            ).milliseconds[0]
            for method in TABLE3_METHODS
        }
        rows.append(Table3Row(name, times))
    return rows


def run_table3_with_std(
    cluster: ClusterSpec = ClusterSpec(), iterations: int = 20
) -> List[Dict[str, str]]:
    """Table III in the paper's own ``mean +/- std`` presentation.

    Uses the jittered variance simulation
    (:mod:`repro.sim.variance`) — the paper measures over ~100 iterations
    on hardware; per-task 2% jitter reproduces its <=12ms std range.
    """
    from repro.sim.variance import simulate_iteration_distribution

    rows = []
    for name, spec in timing_specs().items():
        cells = {"model": name}
        for method in TABLE3_METHODS:
            dist = simulate_iteration_distribution(
                method, spec, cluster=cluster, rank=paper_rank(name),
                iterations=iterations,
            )
            cells[method] = f"{dist.mean_ms:.0f} +/- {dist.std_ms:.0f}"
        rows.append(cells)
    return rows


def render_with_std(rows: List[Dict[str, str]]) -> str:
    """Render the mean +/- std variant."""
    headers = ["Model"] + [METHOD_LABELS[m] for m in TABLE3_METHODS] \
        + ["paper (S/P/P*/ACP)"]
    body = []
    for row in rows:
        paper = PAPER_TABLE3[row["model"]]
        body.append(
            [row["model"]]
            + [row[m] for m in TABLE3_METHODS]
            + ["/".join(str(paper[m]) for m in TABLE3_METHODS)]
        )
    return format_rows(headers, body)


def average_speedups(rows: List[Table3Row]) -> Dict[str, float]:
    """Mean ACP-SGD speedup over each baseline (the paper's 4.06x / 1.34x /
    1.51x headline)."""
    out = {}
    for baseline in ("ssgd", "powersgd", "powersgd_star"):
        out[baseline] = sum(r.speedup_over(baseline) for r in rows) / len(rows)
    return out


def render(rows: List[Table3Row]) -> str:
    headers = (
        ["Model"]
        + [METHOD_LABELS[m] for m in TABLE3_METHODS]
        + ["paper (S/P/P*/ACP)"]
    )
    body = []
    for row in rows:
        paper = PAPER_TABLE3[row.model]
        body.append(
            [row.model]
            + [f"{row.times_ms[m]:.0f}ms" for m in TABLE3_METHODS]
            + ["/".join(str(paper[m]) for m in TABLE3_METHODS)]
        )
    speedups = average_speedups(rows)
    footer = (
        f"\nACP-SGD mean speedups: {speedups['ssgd']:.2f}x over S-SGD "
        f"(paper 4.06x), {speedups['powersgd']:.2f}x over Power-SGD "
        f"(paper 1.34x), {speedups['powersgd_star']:.2f}x over Power-SGD* "
        f"(paper 1.51x)"
    )
    return format_rows(headers, body) + footer
