"""Table II: compress/communicate complexity — analytic vs *measured*.

The analytic column is the paper's formulas
(:mod:`repro.compression.complexity`); the measured column runs the real
collectives through a :class:`~repro.comm.process_group.ProcessGroup` on a
synthetic gradient and counts the bytes each rank actually sent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.complexity import communicate_elements
from repro.optim.aggregators import make_aggregator

FP32 = 4


@dataclass(frozen=True)
class Table2Row:
    """One method's per-worker communication, analytic vs measured."""

    method: str
    analytic_elements: float
    measured_elements: float

    @property
    def relative_error(self) -> float:
        if self.analytic_elements == 0:
            return 0.0
        return abs(self.measured_elements - self.analytic_elements) / self.analytic_elements


def run_table2(
    world_size: int = 4,
    matrix_shape: tuple = (64, 48),
    rank: int = 4,
    topk_ratio: float = 0.01,
    seed: int = 0,
) -> List[Table2Row]:
    """Measure per-worker traffic of one aggregation step per method."""
    rng = np.random.default_rng(seed)
    n, m = matrix_shape
    num_elements = n * m
    grads = [
        {"weight": rng.normal(size=matrix_shape)} for _ in range(world_size)
    ]
    rows: List[Table2Row] = []

    configs = [
        ("ssgd", {}, dict(n=num_elements)),
        ("signsgd", {}, dict(n=num_elements)),
        ("topk", {"ratio": topk_ratio},
         dict(n=num_elements, k=int(round(topk_ratio * num_elements)))),
        ("powersgd", {"rank": rank},
         dict(n=num_elements, n_c=(n + m) * min(rank, n, m))),
        ("acpsgd", {"rank": rank},
         dict(n=num_elements, n_c=(n + m) * min(rank, n, m))),
    ]
    for method, kwargs, analytic_kwargs in configs:
        group = ProcessGroup(world_size)
        aggregator = make_aggregator(method, group, **kwargs)
        # Two steps, so ACP-SGD's P-step / Q-step parities average out.
        for _ in range(2):
            aggregator.aggregate(
                [{k: v.copy() for k, v in g.items()} for g in grads]
            )
        # The in-process wires carry float64 (8B/element); Sign-SGD's wire is
        # packed uint8 bits, which Table II expresses in fp32-equivalent
        # elements (divide bytes by 4).
        divisor = 4.0 if method == "signsgd" else 8.0
        measured = group.bytes_per_rank()[0] / divisor / 2.0
        analytic = communicate_elements(method, world_size, **analytic_kwargs)
        rows.append(Table2Row(method, analytic, measured))
    return rows


def render(rows: List[Table2Row]) -> str:
    from repro.experiments.common import METHOD_LABELS, format_rows

    headers = ["Method", "analytic (elems/worker)", "measured", "rel.err"]
    body = [
        [METHOD_LABELS[row.method], f"{row.analytic_elements:.0f}",
         f"{row.measured_elements:.0f}", f"{row.relative_error:.1%}"]
        for row in rows
    ]
    return format_rows(headers, body)
