"""Worker-process supervision: detect, classify, recover from child death.

The process backend (:mod:`repro.perf.procpool`) runs each rank's backprop
in a persistent child. Children die — OOM-killed, segfaulted, SIGKILLed by
an operator — and they hang, which is worse, because a dead pipe screams
while a deadlocked child says nothing. This module is the policy layer
that turns both events from run-killers into membership events:

- **Detection** is the pool's job: pipe EOF or a dead ``exitcode`` raises
  :class:`WorkerDeadError`; a per-step timeout with the child still alive
  raises :class:`WorkerTimeoutError`. Both derive from :class:`WorkerError`
  (itself a ``RuntimeError``, so legacy ``except RuntimeError`` callers
  keep working) and carry the rank, so callers can classify.
- **Policy** is this module's job: a :class:`SupervisionPolicy` says what
  the trainer does next, and a :class:`WorkerSupervisor` holds the
  recovery budget and the accounting
  (:class:`~repro.faults.resilient.ResilienceStats` gains
  ``worker_crashes`` / ``worker_timeouts`` / ``worker_restarts``).

Two recovery rungs, mirroring the communication layer's ladder:

``"restart"``
    The dead child is ejected from the pool, a fresh one is respawned and
    rejoined (its sampling stream fast-forwarded through the rank's
    completed-task history), and the failed task is re-run *within the
    same step* — the roster never shrinks. Because scheduled
    :class:`~repro.faults.plan.WorkerFault` injections fire *before any
    batch draw*, the retried task consumes exactly the draws the fault-free
    run would have: the recovered trajectory is **bit-identical to the
    fault-free run**. This works with any process group.

``"eject"``
    The step completes degraded — the dead rank contributes nothing and
    the average rescales to the survivors, exactly like a permanent
    communication failure — and the rank is ejected at the next step
    boundary through the :class:`~repro.elastic.MembershipController`.
    After ``respawn_delay_steps`` boundaries the supervisor readmits it
    through the standard admission protocol (donor state broadcast,
    compressor warm-start, re-shard, fresh child spawned against the
    replayed stream). The trajectory is bit-identical to a *sequential*
    run handling the same :class:`~repro.faults.plan.WorkerFault`
    schedule, which is what ``scripts/check_determinism.py`` gates.

The sequential backend *simulates* the same failures at the same point in
the step (:meth:`WorkerSupervisor.simulated_failure`), so every recovery
path has a process-free twin to diff against bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan, WorkerFault
from repro.faults.resilient import ResilienceStats

#: ``exitcode`` reported for a simulated crash (what a real SIGKILL
#: yields from ``multiprocessing.Process.exitcode``).
SIGKILL_EXITCODE = -9


class WorkerError(RuntimeError):
    """A worker process failed to deliver its step result.

    Base of the typed hierarchy the pool raises instead of bare
    ``RuntimeError``; carries the rank so supervisors can classify and
    recover per worker.
    """

    def __init__(self, rank: int, message: str):
        super().__init__(message)
        self.rank = rank


class WorkerDeadError(WorkerError):
    """The worker's process died (pipe EOF / dead exitcode).

    ``exitcode`` is ``multiprocessing.Process.exitcode`` when known
    (negative values are deaths by signal: -9 is SIGKILL), ``None`` when
    the process could not be reaped in time.
    """

    def __init__(self, rank: int, exitcode: Optional[int] = None,
                 phase: str = "step"):
        detail = f"exitcode {exitcode}" if exitcode is not None else "no exitcode"
        super().__init__(
            rank,
            f"worker process for rank {rank} died during {phase} ({detail})",
        )
        self.exitcode = exitcode
        self.phase = phase


class WorkerTimeoutError(WorkerError):
    """The worker's process is alive but did not reply within the step
    timeout — a hang or a pathological slowdown.

    The supervisor treats a hung child as unrecoverable-in-place: it is
    killed and handled like a death (a stuck process may hold locks or a
    half-written pipe; a fresh child is the only safe state).
    """

    def __init__(self, rank: int, timeout_s: float):
        super().__init__(
            rank,
            f"worker process for rank {rank} did not reply within "
            f"{timeout_s}s (hung or overloaded child)",
        )
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class SupervisionPolicy:
    """What the trainer does when a worker process dies or hangs.

    Attributes:
        on_failure: ``"restart"`` (respawn the child and retry its task
            within the step; trajectory bit-identical to fault-free) or
            ``"eject"`` (finish the step degraded, eject the rank at the
            next boundary, optionally readmit it later; requires a
            :class:`~repro.elastic.MembershipController`).
        max_restarts: total child respawns the supervisor will pay for
            over the run — both retry-in-place respawns and
            crashed-during-admission re-seeds draw from this budget; one
            more failure after it is exhausted re-raises the original
            typed error.
        respawn_delay_steps: for ``"eject"``: step boundaries between the
            ejection committing and the supervisor readmitting the rank
            (``1`` readmits at the very boundary the ejection commits, so
            the roster never visibly shrinks; ``None`` never readmits —
            the world stays smaller).
    """

    on_failure: str = "restart"
    max_restarts: int = 8
    respawn_delay_steps: Optional[int] = 2

    def __post_init__(self) -> None:
        if self.on_failure not in ("restart", "eject"):
            raise ValueError(
                f"on_failure must be 'restart' or 'eject', "
                f"got {self.on_failure!r}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.respawn_delay_steps is not None and self.respawn_delay_steps < 1:
            raise ValueError(
                "respawn_delay_steps must be >= 1 (the ejection itself "
                f"commits at the next boundary), got {self.respawn_delay_steps}"
            )


class WorkerSupervisor:
    """Per-run recovery budget + accounting for worker failures.

    One supervisor serves one trainer. It owns no OS resources — the pool
    detects, the trainer orchestrates — it decides (is the budget spent?)
    and counts (into ``stats``, which is the resilient group's own
    :class:`ResilienceStats` when one exists, so worker recovery shows up
    in the same report as communication recovery).
    """

    def __init__(
        self,
        policy: SupervisionPolicy,
        plan: Optional[FaultPlan] = None,
        stats: Optional[ResilienceStats] = None,
    ):
        self.policy = policy
        self.plan = plan
        self.stats = stats if stats is not None else ResilienceStats()
        self.restarts_used = 0

    # ------------------------------------------------------------------
    # Classification + accounting
    # ------------------------------------------------------------------
    def record_failure(self, error: WorkerError) -> None:
        """Count one detected failure by kind."""
        if isinstance(error, WorkerTimeoutError):
            self.stats.worker_timeouts += 1
        else:
            self.stats.worker_crashes += 1

    def consume_restart(self, error: WorkerError) -> None:
        """Spend one respawn from the budget; re-raise when exhausted."""
        if self.restarts_used >= self.policy.max_restarts:
            raise error
        self.restarts_used += 1
        self.stats.worker_restarts += 1

    # ------------------------------------------------------------------
    # Sequential-backend simulation
    # ------------------------------------------------------------------
    def scheduled_fault(self, rank: int, step: int) -> Optional[WorkerFault]:
        """The plan's worker fault for ``(rank, step)``, if any."""
        if self.plan is None:
            return None
        return self.plan.worker_fault_at(rank, step)

    @staticmethod
    def simulated_failure(fault: WorkerFault) -> Optional[WorkerError]:
        """The error the process backend would raise for ``fault``.

        The sequential backend calls this at the exact point a child would
        self-apply the fault (before any batch draw), so both backends
        enter the recovery path in the same state. ``"slow"`` returns
        ``None``: a slow child under the timeout completes normally and
        must not trip supervision in either backend.
        """
        if fault.kind == "crash":
            return WorkerDeadError(fault.rank, exitcode=SIGKILL_EXITCODE)
        if fault.kind == "hang":
            # A hang is only observable through the step timeout; the
            # sequential twin assumes one is armed (the process run must
            # set ``worker_step_timeout`` for hang faults to terminate).
            return WorkerTimeoutError(fault.rank, timeout_s=0.0)
        return None
