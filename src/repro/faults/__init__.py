"""Fault injection and resilient communication (``repro.faults``).

The paper's argument is that gradient compression must earn its keep on
*imperfect* clusters — stragglers, flaky links, lossy numerics. This
package supplies the missing fault model for the reproduction:

- :mod:`repro.faults.plan` — deterministic, seeded fault plans
  (:class:`FaultPlan`) and the :class:`FaultInjector` that applies them to
  per-rank buffers at the process-group boundary: drops, bit-flip/NaN
  corruption, stragglers, transient outages, permanent rank deaths;
- :mod:`repro.faults.resilient` — :class:`ResilientProcessGroup`, the
  self-healing group with checksum/finite detection, retry + exponential
  backoff, ring -> naive fallback, and rank ejection with rescaled
  averaging;
- :mod:`repro.faults.supervisor` — worker-*process* supervision: the
  typed :class:`WorkerDeadError` / :class:`WorkerTimeoutError` hierarchy
  the process pool raises, and the :class:`SupervisionPolicy` /
  :class:`WorkerSupervisor` pair that turns child death into a restart or
  a membership event instead of a dead run.

Trainer-level recovery (skip-step, compression fallback, checkpoint
rollback) lives in :mod:`repro.train.resilience`; the analytical
straggler/failure timing model for the simulator lives in
:mod:`repro.sim.faults`; the cross-subsystem chaos harness lives in
:mod:`repro.chaos` (``python -m repro chaos``). See
``docs/fault_tolerance.md`` for the taxonomy and the determinism
guarantees.
"""

from repro.faults.plan import (
    PEER_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    AttemptFaults,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    Join,
    PeerFault,
    PermanentFailure,
    Recovery,
    TransientFailure,
    WorkerFault,
    corrupt_payload,
)
from repro.faults.resilient import (
    BackoffPolicy,
    ResilienceStats,
    ResilientProcessGroup,
)
from repro.faults.supervisor import (
    SupervisionPolicy,
    WorkerDeadError,
    WorkerError,
    WorkerSupervisor,
    WorkerTimeoutError,
)

__all__ = [
    "PEER_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "AttemptFaults",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Join",
    "PeerFault",
    "PermanentFailure",
    "Recovery",
    "TransientFailure",
    "WorkerFault",
    "corrupt_payload",
    "BackoffPolicy",
    "ResilienceStats",
    "ResilientProcessGroup",
    "SupervisionPolicy",
    "WorkerDeadError",
    "WorkerError",
    "WorkerSupervisor",
    "WorkerTimeoutError",
]
