"""Deterministic, seeded fault plans for the in-process comm stack.

A :class:`FaultPlan` describes *what can go wrong* on the simulated wire:
random payload drops and corruptions, stragglers, and scheduled transient /
permanent rank failures. A :class:`FaultInjector` turns the plan into
concrete per-attempt fault assignments and applies them to per-rank buffers
at the :class:`~repro.comm.process_group.ProcessGroup` boundary.

Determinism is the design center: every random draw comes from a generator
seeded with ``(plan.seed, call_index, attempt, rank)``, so

- the same plan replayed over the same call sequence produces bit-identical
  faults (CI can assert exact recovery behaviour);
- a *retry* of a call (``attempt + 1``) re-samples the random faults — a
  dropped packet is usually clean on retransmit, exactly like a real
  network — while scheduled failures (a rank that is down) persist for as
  many attempts as the plan says.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

_CORRUPT_MODES = ("nan", "bitflip")

#: Adversarial peer behaviours the gossip mode can schedule.
PEER_FAULT_KINDS = ("corrupt-payload", "free-rider", "sign-flip", "lagging")

#: Worker-process failure modes the supervisor must survive.
WORKER_FAULT_KINDS = ("crash", "hang", "slow")

#: Seed-tuple sentinel decoupling the backoff-jitter stream from the
#: per-rank fault stream (ranks are always >= 0, so no collision).
_JITTER_STREAM = 2**31 - 1


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence (the injector's audit log entry)."""

    kind: str  # "drop" | "corrupt" | "straggle" | "down"
    call_index: int
    attempt: int
    rank: int
    detail: str = ""


@dataclass(frozen=True)
class TransientFailure:
    """Rank ``rank`` is unreachable for the first ``attempts`` attempts of
    call ``call_index`` and recovers afterwards.

    With ``attempts`` within the retry budget the call recovers bit-exactly;
    beyond the budget the resilient group degrades by excluding the rank
    from that call only.
    """

    rank: int
    call_index: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.call_index < 0:
            raise ValueError(f"call_index must be >= 0, got {self.call_index}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


@dataclass(frozen=True)
class PermanentFailure:
    """Rank ``rank`` dies at call ``call_index`` and never returns.

    "Never" can be revised by a matching :class:`Recovery` event later in
    the plan — the fail-up half of the membership story.
    """

    rank: int
    call_index: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.call_index < 0:
            raise ValueError(f"call_index must be >= 0, got {self.call_index}")


@dataclass(frozen=True)
class Recovery:
    """Rank ``rank`` becomes reachable again at call ``call_index``.

    A recovery revises the most recent :class:`PermanentFailure` of the
    same rank: from ``call_index`` on the rank answers the wire again, and
    the elastic membership controller readmits it (state warm-start, ring
    rebuild, re-shard) at the next step boundary. Failure and recovery
    events interleave by call index, so a rank can fail, rejoin, and fail
    again within one plan.
    """

    rank: int
    call_index: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.call_index < 0:
            raise ValueError(f"call_index must be >= 0, got {self.call_index}")


@dataclass(frozen=True)
class Join:
    """A brand-new rank asks to join the group at call ``call_index``.

    The joiner has no history and no rank id yet — the membership
    controller allocates the next never-used id and admits it at the first
    step boundary after ``call_index``.
    """

    call_index: int

    def __post_init__(self) -> None:
        if self.call_index < 0:
            raise ValueError(f"call_index must be >= 0, got {self.call_index}")


@dataclass(frozen=True)
class PeerFault:
    """One peer's scheduled adversarial behaviour in the gossip mode.

    Unlike the wire faults above (which strike *collective calls*), peer
    faults strike *published updates*: the peer keeps participating in the
    windowed exchange but its contributions are hostile or useless.

    Attributes:
        kind: one of :data:`PEER_FAULT_KINDS` —
            ``"corrupt-payload"`` (the published blob is bit-flipped so it
            fails CRC verification), ``"free-rider"`` (the peer skips its
            local compute and publishes a zero update), ``"sign-flip"``
            (the classic Byzantine attack: the update is negated, pushing
            the model *away* from the peer's own descent direction), and
            ``"lagging"`` (the peer publishes updates computed ``lag``
            windows ago, stamped with their true window).
        rank: the misbehaving peer's index in the founding roster.
        start_window: first window (inclusive) the behaviour is active.
        end_window: last window (inclusive); ``None`` means forever.
        lag: staleness in windows for ``"lagging"`` peers.
    """

    kind: str
    rank: int
    start_window: int = 0
    end_window: Optional[int] = None
    lag: int = 2

    def __post_init__(self) -> None:
        if self.kind not in PEER_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {PEER_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.start_window < 0:
            raise ValueError(
                f"start_window must be >= 0, got {self.start_window}"
            )
        if self.end_window is not None and self.end_window < self.start_window:
            raise ValueError(
                f"end_window {self.end_window} precedes start_window "
                f"{self.start_window}"
            )
        if self.lag < 1:
            raise ValueError(f"lag must be >= 1, got {self.lag}")

    def active(self, window: int) -> bool:
        """Whether the behaviour applies during ``window``."""
        if window < self.start_window:
            return False
        return self.end_window is None or window <= self.end_window


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled worker-process failure.

    Unlike wire faults (which strike *collective calls*) and peer faults
    (which strike *published updates*), worker faults strike the *compute*:
    the worker executing ``rank``'s backprop misbehaves at training step
    ``step``. Faults are self-applied — a process child reads the plan and
    injects the failure into itself at the top of the task, *before any
    batch draw*, so a respawned child replaying the rank's rng history
    lands exactly where the dead one would have been. The sequential
    backend simulates the same failure at the same point, which is what
    makes ``workers="process"`` recovery comparable bit-for-bit against a
    sequential baseline.

    Attributes:
        kind: one of :data:`WORKER_FAULT_KINDS` —
            ``"crash"`` (the child SIGKILLs itself: pipe EOF, no exit
            handler, no cleanup — the harshest death available),
            ``"hang"`` (the child stops responding; only the parent's
            per-step timeout can detect it), and
            ``"slow"`` (the child sleeps ``delay_s`` then completes —
            a straggler that must *not* trip supervision when the delay
            stays under the step timeout).
        rank: the struck worker's rank id.
        step: 0-based trainer step index at which the fault fires.
        delay_s: sleep for ``"slow"`` workers (ignored by other kinds).
    """

    kind: str
    rank: int
    step: int
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {WORKER_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the fault environment.

    Attributes:
        seed: root seed for all random fault draws.
        drop_rate: per-(call, attempt, rank) probability a rank's payload is
            lost in transit.
        corrupt_rate: per-(call, attempt, rank) probability a rank's payload
            is corrupted (mode below).
        corrupt_mode: ``"nan"`` (poison one element) or ``"bitflip"`` (flip
            one random bit of the raw bytes — may stay finite, but never
            passes the CRC check).
        straggler_rate: per-(call, attempt, rank) probability the rank is
            slow; stragglers delay the call but do not fail it.
        straggler_delay_s: simulated extra seconds a straggling rank adds.
        transient: scheduled recoverable outages.
        permanent: scheduled unrecoverable rank deaths.
        recoveries: scheduled rank rejoins (each revises the most recent
            permanent failure of its rank).
        joins: scheduled admissions of brand-new ranks.
        peer_faults: scheduled adversarial peer behaviours for the gossip
            mode (:class:`PeerFault`); in gossip runs ``permanent`` /
            ``recoveries`` / ``joins`` events are interpreted with
            ``call_index`` meaning *window index*.
        worker_faults: scheduled worker-process failures
            (:class:`WorkerFault`), self-applied by process children and
            simulated by the sequential backend at the same step.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_mode: str = "nan"
    straggler_rate: float = 0.0
    straggler_delay_s: float = 0.05
    transient: Tuple[TransientFailure, ...] = ()
    permanent: Tuple[PermanentFailure, ...] = ()
    recoveries: Tuple[Recovery, ...] = ()
    joins: Tuple[Join, ...] = ()
    peer_faults: Tuple[PeerFault, ...] = ()
    worker_faults: Tuple[WorkerFault, ...] = ()

    def __post_init__(self) -> None:
        for rate_name in ("drop_rate", "corrupt_rate", "straggler_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.corrupt_mode not in _CORRUPT_MODES:
            raise ValueError(
                f"corrupt_mode must be one of {_CORRUPT_MODES}, "
                f"got {self.corrupt_mode!r}"
            )
        if self.straggler_delay_s < 0:
            raise ValueError(
                f"straggler_delay_s must be >= 0, got {self.straggler_delay_s}"
            )
        # Coerce lists (convenient at call sites) to tuples for hashability.
        object.__setattr__(self, "transient", tuple(self.transient))
        object.__setattr__(self, "permanent", tuple(self.permanent))
        object.__setattr__(self, "recoveries", tuple(self.recoveries))
        object.__setattr__(self, "joins", tuple(self.joins))
        object.__setattr__(self, "peer_faults", tuple(self.peer_faults))
        object.__setattr__(self, "worker_faults", tuple(self.worker_faults))
        by_cell: Set[Tuple[int, int]] = set()
        for fault in self.worker_faults:
            cell = (fault.rank, fault.step)
            if cell in by_cell:
                raise ValueError(
                    f"multiple worker faults for rank {fault.rank} at step "
                    f"{fault.step}; schedule at most one per (rank, step)"
                )
            by_cell.add(cell)

    def rank_rng(self, call_index: int, attempt: int, rank: int) -> np.random.Generator:
        """Deterministic generator for one (call, attempt, rank) cell."""
        return np.random.default_rng((self.seed, call_index, attempt, rank))

    def jitter_rng(self, call_index: int, retry: int) -> np.random.Generator:
        """Deterministic stream for backoff jitter on one (call, retry).

        Derived from the plan seed — never from global RNG state — so
        retry timing is part of the seeded replay contract: the same plan
        over the same call sequence waits the same simulated backoff.
        """
        return np.random.default_rng(
            (self.seed, call_index, retry, _JITTER_STREAM)
        )

    def peer_faults_at(self, rank: int, window: int) -> Tuple[PeerFault, ...]:
        """Peer-fault behaviours active for ``rank`` during ``window``."""
        return tuple(
            fault for fault in self.peer_faults
            if fault.rank == rank and fault.active(window)
        )

    def adversarial_ranks(self) -> Set[int]:
        """Founding ranks with at least one scheduled peer fault."""
        return {fault.rank for fault in self.peer_faults}

    def worker_fault_at(self, rank: int, step: int) -> Optional[WorkerFault]:
        """The worker fault scheduled for ``rank`` at trainer step ``step``.

        At most one per (rank, step) — enforced at construction — so both
        the child applying it and the supervisor reconciling against it see
        the same unambiguous schedule.
        """
        for fault in self.worker_faults:
            if fault.rank == rank and fault.step == step:
                return fault
        return None

    def rank_down(self, call_index: int, attempt: int, rank: int) -> bool:
        """Whether a scheduled (non-random) outage silences this rank now."""
        if self.permanently_down(rank, call_index):
            return True
        for failure in self.transient:
            if (failure.rank == rank and failure.call_index == call_index
                    and attempt < failure.attempts):
                return True
        return False

    def permanently_down(self, rank: int, call_index: int) -> bool:
        """Whether ``rank`` is in a (possibly recoverable) permanent outage.

        Failure and :class:`Recovery` events interleave by call index and
        the latest one wins: a rank is down iff its most recent permanent
        failure at or before ``call_index`` has no later recovery.
        """
        last_failure = max(
            (f.call_index for f in self.permanent
             if f.rank == rank and f.call_index <= call_index),
            default=None,
        )
        if last_failure is None:
            return False
        last_recovery = max(
            (r.call_index for r in self.recoveries
             if r.rank == rank and r.call_index <= call_index),
            default=None,
        )
        return last_recovery is None or last_recovery < last_failure

    def permanently_dead(self, call_index: int) -> Set[int]:
        """Ranks in a permanent outage (not yet recovered) at ``call_index``."""
        return {
            failure.rank for failure in self.permanent
            if self.permanently_down(failure.rank, call_index)
        }

    def membership_events(self) -> Tuple:
        """Recovery/join events in deterministic commit order.

        Sorted by (call_index, kind, rank) — recoveries before joins at the
        same call index, so a rejoining rank reclaims its old id before a
        fresh joiner is allocated a new one.
        """
        keyed = [(r.call_index, 0, r.rank, r) for r in self.recoveries]
        keyed += [(j.call_index, 1, -1, j) for j in self.joins]
        return tuple(event for *_, event in sorted(keyed, key=lambda k: k[:3]))


@dataclass
class AttemptFaults:
    """Concrete fault assignment for one attempt of one collective call."""

    call_index: int
    attempt: int
    dropped: Set[int] = field(default_factory=set)
    corrupted: Set[int] = field(default_factory=set)
    down: Set[int] = field(default_factory=set)
    straggler_delay_s: float = 0.0

    @property
    def faulty_ranks(self) -> Set[int]:
        """Ranks whose payload will not arrive intact this attempt."""
        return self.dropped | self.corrupted | self.down

    @property
    def clean(self) -> bool:
        return not self.faulty_ranks


def corrupt_payload(
    buffer: np.ndarray, rng: np.random.Generator, mode: str = "nan"
) -> np.ndarray:
    """Return a corrupted copy of ``buffer`` (the original is untouched)."""
    out = np.array(buffer, copy=True)
    if out.size == 0:
        return out
    if mode == "nan":
        flat = out.reshape(-1)
        if flat.dtype.kind != "f":
            flat = flat.astype(np.float64)
            out = flat.reshape(out.shape)
        flat[int(rng.integers(flat.size))] = np.nan
        return out
    if mode == "bitflip":
        raw = bytearray(out.tobytes())
        bit = int(rng.integers(len(raw) * 8))
        raw[bit // 8] ^= 1 << (bit % 8)
        return np.frombuffer(bytes(raw), dtype=out.dtype).reshape(out.shape).copy()
    raise ValueError(f"unknown corrupt mode {mode!r}")


class FaultInjector:
    """Materializes a :class:`FaultPlan` into per-attempt buffer faults.

    One injector serves one process group; it keeps an append-only
    :attr:`events` log so tests (and the resilience report) can reconcile
    detected faults against injected ones.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: List[FaultEvent] = []

    def sample(
        self, call_index: int, attempt: int, ranks: Sequence[int]
    ) -> AttemptFaults:
        """Draw this attempt's fault assignment for the given live ranks."""
        faults = AttemptFaults(call_index=call_index, attempt=attempt)
        plan = self.plan
        for rank in ranks:
            if plan.rank_down(call_index, attempt, rank):
                faults.down.add(rank)
                self._log("down", call_index, attempt, rank)
                continue
            rng = plan.rank_rng(call_index, attempt, rank)
            draw_drop, draw_corrupt, draw_straggle = rng.random(3)
            if plan.drop_rate and draw_drop < plan.drop_rate:
                faults.dropped.add(rank)
                self._log("drop", call_index, attempt, rank)
            elif plan.corrupt_rate and draw_corrupt < plan.corrupt_rate:
                faults.corrupted.add(rank)
                self._log("corrupt", call_index, attempt, rank, plan.corrupt_mode)
            if plan.straggler_rate and draw_straggle < plan.straggler_rate:
                faults.straggler_delay_s = max(
                    faults.straggler_delay_s, plan.straggler_delay_s
                )
                self._log("straggle", call_index, attempt, rank)
        return faults

    def apply(
        self,
        buffers: Sequence[np.ndarray],
        ranks: Sequence[int],
        faults: AttemptFaults,
    ) -> List[Optional[np.ndarray]]:
        """Simulate the transfer: per position, the payload as received.

        ``None`` marks a payload that never arrived (drop or down rank);
        corrupted ranks yield a tampered copy; everyone else passes their
        buffer through untouched.
        """
        received: List[Optional[np.ndarray]] = []
        for position, rank in enumerate(ranks):
            if rank in faults.dropped or rank in faults.down:
                received.append(None)
            elif rank in faults.corrupted:
                rng = self.plan.rank_rng(faults.call_index, faults.attempt, rank)
                rng = np.random.default_rng(rng.integers(2**63))  # decouple from sample()
                received.append(
                    corrupt_payload(buffers[position], rng, self.plan.corrupt_mode)
                )
            else:
                received.append(buffers[position])
        return received

    def events_of_kind(self, kind: str) -> List[FaultEvent]:
        """Filter the audit log by fault kind."""
        return [event for event in self.events if event.kind == kind]

    def _log(self, kind: str, call_index: int, attempt: int, rank: int,
             detail: str = "") -> None:
        self.events.append(FaultEvent(kind, call_index, attempt, rank, detail))
