"""Fault-detecting, self-healing process group.

:class:`ResilientProcessGroup` extends the lockstep
:class:`~repro.comm.process_group.ProcessGroup` with the recovery ladder a
production collective stack needs (NCCL + an elastic-training controller,
condensed into one in-process object):

1. **Detect** — every per-rank payload is verified on receipt with a CRC-32
   checksum (catches bit flips and drops) and a finite check (catches NaN
   poisoning even when no checksum is available).
2. **Retry with backoff** — a failed attempt is retransmitted after an
   exponential backoff, up to ``BackoffPolicy.max_retries`` attempts and a
   per-call simulated-time budget ``call_timeout_s``. Transient faults
   (random drops/corruption, short outages) recover *bit-exactly*: the
   retried collective runs on the original buffers.
3. **Fall back** — after ``ring_failure_threshold`` consecutive all-reduce
   calls that needed retries, the group abandons the chunked ring (whose
   2(p-1) steps make it fragile: any bad link fails the whole call) for the
   naive gather-to-root reduce, trading bandwidth optimality for fewer
   moving parts.
4. **Degrade / eject** — when retries are exhausted, the call proceeds
   *without* the faulty ranks and the average is rescaled to the ranks that
   actually contributed. A rank the plan marks permanently dead is ejected:
   at the next :meth:`begin_step` the world shrinks to ``p - 1``, the ring
   re-chunks, and training continues.

All waiting is *simulated* (accumulated into ``CollectiveStats.delay_s``
and the resilience stats), so recovery behaviour is deterministic and can
be asserted in CI: the same :class:`~repro.faults.plan.FaultPlan` replayed
with the same seed yields bit-identical training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.comm import collectives
from repro.comm.process_group import ProcessGroup
from repro.faults.plan import AttemptFaults, FaultInjector
from repro.utils.validation import is_finite, payload_checksum


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry/backoff budget for one collective call.

    Attributes:
        max_retries: retransmission attempts after the initial one.
        base_delay_s: backoff before the first retry.
        multiplier: exponential backoff growth factor.
        max_delay_s: cap on a single backoff interval.
        call_timeout_s: per-call budget of simulated waiting (stragglers +
            backoff); once exceeded, the call stops retrying and degrades.
        ring_failure_threshold: consecutive all-reduce calls needing >= 1
            retry before the group falls back to the naive algorithm.
        jitter: full-jitter fraction in ``[0, 1)``: each backoff interval
            is scaled by a factor drawn uniformly from
            ``[1 - jitter, 1 + jitter]``. The draw comes from the fault
            plan's seeded stream (:meth:`FaultPlan.jitter_rng`), never
            from global RNG state, so jittered retry timing replays
            bit-identically under the same seed.
    """

    max_retries: int = 4
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    call_timeout_s: float = 5.0
    ring_failure_threshold: int = 3
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.call_timeout_s <= 0:
            raise ValueError(
                f"call_timeout_s must be > 0, got {self.call_timeout_s}"
            )
        if self.ring_failure_threshold < 1:
            raise ValueError(
                f"ring_failure_threshold must be >= 1, "
                f"got {self.ring_failure_threshold}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_delay(
        self, retry: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retry number ``retry`` (1-based).

        ``rng`` supplies the jitter draw; the resilient group passes the
        fault plan's :meth:`~repro.faults.plan.FaultPlan.jitter_rng`
        stream. With ``jitter == 0`` (or no rng) the delay is the pure
        exponential schedule.
        """
        if retry < 1:
            raise ValueError(f"retry is 1-based, got {retry}")
        delay = min(
            self.base_delay_s * self.multiplier ** (retry - 1), self.max_delay_s
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


@dataclass
class ResilienceStats:
    """Cumulative recovery accounting for one resilient group."""

    calls: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    straggler_delay_s: float = 0.0
    drops_detected: int = 0
    corruptions_detected: int = 0
    timeouts: int = 0
    ring_fallback_calls: int = 0
    degraded_calls: int = 0
    #: Worker-process supervision (see :mod:`repro.faults.supervisor`):
    #: child deaths detected, step-timeout hangs detected, and children
    #: respawned (retry-in-place or re-seeded after an admission crash).
    worker_crashes: int = 0
    worker_timeouts: int = 0
    worker_restarts: int = 0
    ejected_ranks: List[int] = field(default_factory=list)
    rejoined_ranks: List[int] = field(default_factory=list)
    joined_ranks: List[int] = field(default_factory=list)
    #: (call_index, world_size) at construction and after every membership
    #: change — the world-size timeline of the run.
    world_size_timeline: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def ejections(self) -> int:
        """Ranks removed from the roster (permanent-failure commits)."""
        return len(self.ejected_ranks)

    @property
    def rejoins(self) -> int:
        """Previously ejected ranks readmitted by a Recovery event."""
        return len(self.rejoined_ranks)

    @property
    def joins(self) -> int:
        """Brand-new ranks admitted by a Join event."""
        return len(self.joined_ranks)

    def render(self) -> str:
        """Human-readable one-call-per-line summary."""
        lines = [
            f"collective calls      {self.calls}",
            f"retries               {self.retries}",
            f"backoff waited        {self.backoff_s * 1e3:.1f} ms",
            f"straggler delay       {self.straggler_delay_s * 1e3:.1f} ms",
            f"drops detected        {self.drops_detected}",
            f"corruptions detected  {self.corruptions_detected}",
            f"timeouts              {self.timeouts}",
            f"naive-fallback calls  {self.ring_fallback_calls}",
            f"degraded calls        {self.degraded_calls}",
            f"worker crashes        {self.worker_crashes}",
            f"worker timeouts       {self.worker_timeouts}",
            f"worker restarts       {self.worker_restarts}",
            f"ejections             {self.ejections} {self.ejected_ranks or '[]'}",
            f"rejoins               {self.rejoins} {self.rejoined_ranks or '[]'}",
            f"joins                 {self.joins} {self.joined_ranks or '[]'}",
        ]
        if self.world_size_timeline:
            timeline = " -> ".join(
                f"{size}@call{call}" for call, size in self.world_size_timeline
            )
            lines.append(f"world-size timeline   {timeline}")
        return "\n".join(lines)


@dataclass
class _CallOutcome:
    """Result of the retry negotiation for one collective call."""

    call_index: int
    excluded: Set[int]  # ranks that do not contribute to this call
    delay_s: float
    retries: int
    timed_out: bool


class ResilientProcessGroup(ProcessGroup):
    """Process group that survives injected communication faults.

    Args:
        world_size: initial rank count.
        injector: fault source; ``None`` gives a fault-free group that still
            exercises the detection path (useful as a like-for-like control
            in experiments).
        policy: retry/backoff/fallback budgets.

    ``world_size`` always reflects the *live* world: after a permanent rank
    loss is committed by :meth:`begin_step`, callers must supply one buffer
    per surviving rank and averages divide by the survivor count.
    """

    #: In-place aggregation is forbidden here: retries retransmit the
    #: *original* per-rank buffers after a CRC/finite failure, and degraded
    #: averaging rescales to the contributing subset — both need the
    #: payloads intact after the first attempt. Aggregators therefore keep
    #: zero-copy packing but route the collective through the copying path.
    supports_inplace = False

    def __init__(
        self,
        world_size: int,
        injector: Optional[FaultInjector] = None,
        policy: Optional[BackoffPolicy] = None,
    ):
        super().__init__(world_size)
        self.initial_world_size = world_size
        self.injector = injector
        self.policy = policy if policy is not None else BackoffPolicy()
        self.stats = ResilienceStats()
        self.live_ranks: List[int] = list(range(world_size))
        self._dead: Set[int] = set()
        self._call_index = 0
        self._consecutive_ring_failures = 0
        self._ring_disabled = False
        # Highest rank id ever used: Join admissions allocate past it so a
        # new rank can never collide with a live or ejected one.
        self._max_rank = world_size - 1
        self.stats.world_size_timeline.append((0, world_size))

    # ------------------------------------------------------------------
    # World management
    # ------------------------------------------------------------------
    def begin_step(self) -> List[int]:
        """Commit pending rank ejections; returns the live roster.

        Callers driving multi-collective steps (the trainer) call this once
        per step so the world size never changes *within* a step — detected
        deaths only shrink the roster at the next step boundary, mirroring
        how elastic runtimes restart the job between iterations.
        """
        newly_dead = [rank for rank in self.live_ranks if rank in self._dead]
        for rank in newly_dead:
            self.live_ranks.remove(rank)
            self.stats.ejected_ranks.append(rank)
        if newly_dead:
            self.world_size = len(self.live_ranks)
            if self.world_size == 0:
                raise RuntimeError("all ranks have failed permanently")
            self.stats.world_size_timeline.append(
                (self._call_index, self.world_size)
            )
        return list(self.live_ranks)

    def admit(self, rank: int, rejoin: bool) -> None:
        """Add ``rank`` to the live roster (a step-boundary operation).

        Called by the elastic :class:`~repro.elastic.MembershipController`
        after the admission protocol's state synchronization; the ring
        re-chunks automatically on the next collective because chunking is
        derived from the roster length. ``rejoin`` distinguishes a
        previously ejected rank returning from a brand-new rank for the
        stats.
        """
        if rank in self.live_ranks:
            raise ValueError(f"rank {rank} is already live")
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank}")
        self._dead.discard(rank)
        self.live_ranks.append(rank)
        self.live_ranks.sort()
        self.world_size = len(self.live_ranks)
        self._max_rank = max(self._max_rank, rank)
        if rejoin:
            self.stats.rejoined_ranks.append(rank)
        else:
            self.stats.joined_ranks.append(rank)
        self.stats.world_size_timeline.append((self._call_index, self.world_size))

    def allocate_rank(self) -> int:
        """Next never-used rank id for a :class:`~repro.faults.plan.Join`."""
        self._max_rank += 1
        return self._max_rank

    def mark_worker_failed(self, rank: int) -> None:
        """Treat ``rank`` as dead from *outside* evidence (a crashed child).

        The communication layer marks ranks dead from wire evidence; the
        worker supervisor marks them dead from process evidence (pipe EOF,
        exitcode, step timeout). Either way the consequences are the same:
        the rank contributes to no further collective this step (excluded
        cost-free, averages rescale to the survivors) and the ejection
        commits at the next :meth:`begin_step` boundary. Idempotent.
        """
        if rank not in self.live_ranks:
            raise ValueError(f"rank {rank} is not in the live roster")
        self._dead.add(rank)

    @property
    def call_index(self) -> int:
        """Index the next collective call will carry (monotonic)."""
        return self._call_index

    @property
    def ring_disabled(self) -> bool:
        """True once the fallback ladder switched all-reduce to naive."""
        return self._ring_disabled

    def injected_delay_s(self) -> float:
        """Total simulated delay recorded on this group's collectives."""
        return float(sum(stats.delay_s for stats in self.history))

    # ------------------------------------------------------------------
    # Detection + retry core
    # ------------------------------------------------------------------
    def _verify_received(
        self,
        buffers: Sequence[np.ndarray],
        received: Sequence[Optional[np.ndarray]],
        checksums: Sequence[int],
        ranks: Sequence[int],
    ) -> Tuple[Set[int], int, int]:
        """Checksum/finite-check the received payloads.

        Returns (bad ranks, drops, corruptions). Detection is *evidence
        based*: a rank is only flagged when its payload is missing, fails
        the CRC, or carries non-finite values.
        """
        bad: Set[int] = set()
        drops = 0
        corruptions = 0
        for position, rank in enumerate(ranks):
            payload = received[position]
            if payload is None:
                bad.add(rank)
                drops += 1
            elif (payload_checksum(payload) != checksums[position]
                  or not is_finite(payload)):
                bad.add(rank)
                corruptions += 1
        return bad, drops, corruptions

    def _negotiate(
        self, buffers: Sequence[np.ndarray], ranks: Sequence[int]
    ) -> _CallOutcome:
        """Run the detect/retry/backoff loop for one collective call."""
        call = self._call_index
        self._call_index += 1
        self.stats.calls += 1
        policy = self.policy

        # Ranks already known dead contribute nothing and cost no retries.
        known_dead = {rank for rank in ranks if rank in self._dead}
        active = [rank for rank in ranks if rank not in known_dead]

        if self.injector is None:
            return _CallOutcome(call, known_dead, 0.0, 0, False)

        checksums = [
            payload_checksum(buffers[position])
            for position, rank in enumerate(ranks)
        ]
        delay = 0.0
        retries = 0
        timed_out = False
        excluded: Set[int] = set(known_dead)
        while True:
            faults = self.injector.sample(call, retries, active)
            delay += faults.straggler_delay_s
            self.stats.straggler_delay_s += faults.straggler_delay_s
            received = self.injector.apply(buffers, ranks, faults)
            # Positions of known-dead ranks are ignored by marking them bad.
            bad, drops, corruptions = self._verify_received(
                buffers, received, checksums, ranks
            )
            bad = {rank for rank in bad if rank in active}
            self.stats.drops_detected += drops
            self.stats.corruptions_detected += corruptions
            if not bad:
                break
            if retries >= policy.max_retries:
                excluded |= bad
                break
            backoff = policy.backoff_delay(
                retries + 1, rng=self.injector.plan.jitter_rng(call, retries + 1)
            )
            if delay + backoff > policy.call_timeout_s:
                timed_out = True
                self.stats.timeouts += 1
                excluded |= bad
                break
            retries += 1
            self.stats.retries += 1
            self.stats.backoff_s += backoff
            delay += backoff

        # Ranks whose permanent failure has fired are marked for ejection
        # at the next step boundary; transient stragglers are excluded from
        # this call only.
        for rank in excluded & self.injector.plan.permanently_dead(call):
            self._dead.add(rank)
        if excluded - known_dead:
            self.stats.degraded_calls += 1
        return _CallOutcome(call, excluded, delay, retries, timed_out)

    def _note_ring_health(self, outcome: _CallOutcome) -> None:
        """Advance the fallback ladder on retry-burning all-reduce calls."""
        if self._ring_disabled:
            return
        if outcome.retries > 0 or outcome.excluded:
            self._consecutive_ring_failures += 1
            if self._consecutive_ring_failures >= self.policy.ring_failure_threshold:
                self._ring_disabled = True
        else:
            self._consecutive_ring_failures = 0

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def all_reduce(
        self, buffers: Sequence[np.ndarray], average: bool = False
    ) -> List[np.ndarray]:
        """Resilient all-reduce: ring while healthy, naive after fallback.

        The average (when requested) divides by the number of ranks that
        actually contributed, so a degraded call still returns an unbiased
        mean of the surviving gradients.
        """
        self._check_world(buffers)
        ranks = list(self.live_ranks)
        outcome = self._negotiate(buffers, ranks)
        self._note_ring_health(outcome)
        contributing = [
            position for position, rank in enumerate(ranks)
            if rank not in outcome.excluded
        ]
        if not contributing:
            raise RuntimeError(
                f"all-reduce call {outcome.call_index}: no healthy rank left"
            )
        subset = [buffers[position] for position in contributing]
        if self._ring_disabled:
            reduced, stats = collectives.all_reduce_naive(subset)
            self.stats.ring_fallback_calls += 1
        else:
            reduced, stats = collectives.all_reduce_ring(subset)
        stats.delay_s = outcome.delay_s
        self.history.append(stats)
        result = reduced[0]
        if average:
            result = result / len(subset)
        return [result.copy() for _ in buffers]

    def all_reduce_(
        self, buffers: Sequence[np.ndarray], average: bool = False
    ) -> Sequence[np.ndarray]:
        """Semantic-compatible fallback: fault-checked reduce, copy back.

        A caller that reaches for the in-place API on a resilient group
        still gets the full detect/retry/degrade ladder — the reduction
        runs on copies (so retransmissions see pristine payloads) and the
        result is copied back into ``buffers``.
        """
        results = self.all_reduce(list(buffers), average=average)
        for buf, res in zip(buffers, results):
            np.copyto(buf, res)
        return buffers

    def all_reduce_segment(
        self,
        buffers: Sequence[np.ndarray],
        seg_start: int,
        total_length: int,
        average: bool = False,
    ) -> List[np.ndarray]:
        """Resilient bucket all-reduce with a *per-bucket* retry ladder.

        Each bucket runs the full detect/retry/backoff negotiation on its
        own payloads, so a transient fault retransmits only the affected
        bucket — not the whole fused gradient — before degrading. While the
        ring is healthy the reduction uses the monolithic chunk schedule
        (bit-identical to a fused all-reduce on a clean group); after the
        fallback ladder fires, the bucket is summed naively in rank order,
        and a degraded bucket averages over the ranks that contributed.
        """
        self._check_world(buffers)
        ranks = list(self.live_ranks)
        outcome = self._negotiate(buffers, ranks)
        self._note_ring_health(outcome)
        contributing = [
            position for position, rank in enumerate(ranks)
            if rank not in outcome.excluded
        ]
        if not contributing:
            raise RuntimeError(
                f"bucket all-reduce call {outcome.call_index}: "
                f"no healthy rank left"
            )
        subset = [buffers[position] for position in contributing]
        if self._ring_disabled:
            flat = [buf.reshape(-1).astype(np.float64) for buf in subset]
            result = flat[0].copy()
            for payload in flat[1:]:
                result += payload
            nbytes = result.nbytes
            stats = collectives.CollectiveStats(
                algorithm="allreduce_naive_segment",
                world_size=len(subset),
                bytes_sent_per_rank=[nbytes * (len(subset) - 1)]
                + [nbytes] * (len(subset) - 1),
                steps=2,
            )
            reduced = [result]
            self.stats.ring_fallback_calls += 1
        else:
            reduced, stats = collectives.all_reduce_ring_segment(
                subset, seg_start, total_length
            )
        stats.delay_s = outcome.delay_s
        self.history.append(stats)
        result = reduced[0]
        if average:
            result = result / len(subset)
        return [result.copy() for _ in buffers]

    def all_reduce_segment_(
        self,
        buffers: Sequence[np.ndarray],
        seg_start: int,
        total_length: int,
        average: bool = False,
    ) -> Sequence[np.ndarray]:
        """Fault-checked bucket reduce on copies, result copied back."""
        results = self.all_reduce_segment(
            list(buffers), seg_start, total_length, average=average
        )
        for buf, res in zip(buffers, results):
            np.copyto(buf, res)
        return buffers

    def all_gather(self, buffers: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Resilient all-gather; degraded calls omit the failed payloads."""
        self._check_world(buffers)
        ranks = list(self.live_ranks)
        outcome = self._negotiate(buffers, ranks)
        contributing = [
            position for position, rank in enumerate(ranks)
            if rank not in outcome.excluded
        ]
        if not contributing:
            raise RuntimeError(
                f"all-gather call {outcome.call_index}: no healthy rank left"
            )
        subset = [buffers[position] for position in contributing]
        gathered, stats = collectives.all_gather(subset)
        stats.delay_s = outcome.delay_s
        self.history.append(stats)
        payloads = gathered[0]
        return [[payload.copy() for payload in payloads] for _ in buffers]

    def resilience_report(self) -> str:
        """Render the recovery stats (and the live world) for humans."""
        header = (
            f"world {len(self.live_ranks)}/{self.initial_world_size} live; "
            f"ring {'disabled (naive fallback)' if self._ring_disabled else 'active'}"
        )
        return header + "\n" + self.stats.render()
