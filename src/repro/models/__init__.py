"""Model zoo.

Two kinds of models, matching the two kinds of experiments:

- **Shape-level specs** (:mod:`repro.models.spec`,
  :mod:`repro.models.resnet_specs`, :mod:`repro.models.bert_specs`,
  :mod:`repro.models.registry`): exact per-layer parameter shapes and FLOP
  counts of ResNet-50/152, BERT-Base/Large, VGG-16 and ResNet-18 at the
  paper's input sizes. These drive the performance simulator and the
  Table I / Table II / Fig. 5 analytics. They are validated against the
  paper's reported parameter counts and compression ratios.
- **Runnable models** (:mod:`repro.models.convnets`): scaled-down
  VGG-style / ResNet-style numpy convnets plus an MLP, actually trainable
  on CPU, used for the convergence experiments (Fig. 6 / Fig. 7).
"""

from repro.models.spec import LayerSpec, ModelSpec, TensorSpec
from repro.models.registry import MODEL_SPECS, get_model_spec, paper_batch_size
from repro.models.resnet_specs import resnet18_spec, resnet50_spec, resnet152_spec
from repro.models.vgg_specs import vgg16_spec
from repro.models.bert_specs import bert_base_spec, bert_large_spec
from repro.models.convnets import (
    make_mlp,
    make_small_resnet,
    make_small_vgg,
)
from repro.models.transformer import (
    TinyBERT,
    make_sequence_dataset,
    make_tiny_bert,
)

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "TensorSpec",
    "MODEL_SPECS",
    "get_model_spec",
    "paper_batch_size",
    "resnet18_spec",
    "resnet50_spec",
    "resnet152_spec",
    "vgg16_spec",
    "bert_base_spec",
    "bert_large_spec",
    "make_mlp",
    "make_small_resnet",
    "make_small_vgg",
    "TinyBERT",
    "make_sequence_dataset",
    "make_tiny_bert",
]
