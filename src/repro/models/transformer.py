"""A runnable tiny BERT-style encoder for sequence classification.

The trainable counterpart of the paper's BERT workloads: token + position
embeddings, a stack of transformer encoder layers, mean pooling and a
classifier head. Its weight gradients include exactly the matrix families
the paper compresses at rank 32 (attention ``H x H``, FFN ``H x 4H``,
embedding ``V x H``), so the low-rank aggregators exercise the same shapes
at miniature scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.nn.attention import TransformerEncoderLayer


class TinyBERT(nn.Module):
    """Encoder-only classifier over integer token sequences.

    Input: int array ``(batch, seq)``; output logits ``(batch, classes)``.
    """

    def __init__(
        self,
        vocab_size: int = 64,
        hidden: int = 32,
        num_layers: int = 2,
        num_heads: int = 4,
        max_seq: int = 32,
        num_classes: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.token_embedding = nn.Embedding(vocab_size, hidden, rng=rng)
        self.position_embedding = nn.Embedding(max_seq, hidden, rng=rng)
        self.encoder_layers = [
            TransformerEncoderLayer(hidden, num_heads, rng=rng)
            for _ in range(num_layers)
        ]
        self.final_norm = nn.LayerNorm(hidden)
        self.classifier = nn.Linear(hidden, num_classes, rng=rng)
        self.max_seq = max_seq
        self._seq_len: Optional[int] = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        if tokens.ndim != 2:
            raise ValueError(f"expected (batch, seq) tokens, got {tokens.shape}")
        if tokens.shape[1] > self.max_seq:
            raise ValueError(
                f"sequence length {tokens.shape[1]} exceeds max_seq {self.max_seq}"
            )
        batch, seq = tokens.shape
        self._seq_len = seq
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.token_embedding(tokens) + self.position_embedding(
            np.ascontiguousarray(positions)
        )
        for layer in self.encoder_layers:
            x = layer(x)
        x = self.final_norm(x)
        pooled = x.mean(axis=1)  # mean pooling over the sequence
        return self.classifier(pooled)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._seq_len is None:
            raise RuntimeError("backward called before forward")
        grad_pooled = self.classifier.backward(grad_output)
        seq = self._seq_len
        grad_x = np.broadcast_to(
            grad_pooled[:, None, :] / seq,
            (grad_pooled.shape[0], seq, grad_pooled.shape[1]),
        ).copy()
        grad_x = self.final_norm.backward(grad_x)
        for layer in reversed(self.encoder_layers):
            grad_x = layer.backward(grad_x)
        self.position_embedding.backward(grad_x)
        self.token_embedding.backward(grad_x)
        self._seq_len = None
        return grad_x


def make_tiny_bert(**kwargs) -> TinyBERT:
    """Factory mirroring the convnet factories."""
    return TinyBERT(**kwargs)


def make_sequence_dataset(
    num_samples: int,
    vocab_size: int = 64,
    seq_len: int = 16,
    num_classes: int = 4,
    noise_tokens: int = 4,
    seed: int = 0,
):
    """Synthetic sequence classification: each class has signature tokens.

    A sample of class ``c`` contains several tokens from class ``c``'s
    signature vocabulary slice plus random noise tokens — learnable by
    attention over token identity, CIFAR-like in difficulty scaling.

    Returns (tokens int array (N, seq), labels (N,)).
    """
    if vocab_size < num_classes * 2:
        raise ValueError("vocab too small for distinct class signatures")
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, vocab_size, size=(num_samples, seq_len))
    labels = rng.integers(0, num_classes, size=num_samples)
    slice_size = vocab_size // num_classes
    signal_positions = rng.integers(
        0, seq_len, size=(num_samples, seq_len - noise_tokens)
    )
    for i in range(num_samples):
        lo = labels[i] * slice_size
        signals = rng.integers(lo, lo + slice_size, size=signal_positions.shape[1])
        tokens[i, signal_positions[i]] = signals
    return tokens, labels
