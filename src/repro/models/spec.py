"""Shape-level model descriptions for the performance simulator.

A :class:`ModelSpec` is the paper-accurate skeleton of a DNN: an ordered
list of layers, each with its learnable tensors (exact shapes) and its
per-sample forward FLOPs. The simulator walks layers forward for FF, then
in reverse for BP, emitting each layer's gradient tensors as they become
ready — the event stream WFBP and tensor fusion schedule around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

FP32_BYTES = 4


@dataclass(frozen=True)
class TensorSpec:
    """One learnable tensor.

    Attributes:
        name: dotted path, unique within the model.
        shape: parameter shape (conv weights keep their 4-D shape; the
            compression layer applies the §IV-C reshaping rules).
    """

    name: str
    shape: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of elements."""
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def nbytes(self) -> int:
        """fp32 bytes on the wire."""
        return self.size * FP32_BYTES


@dataclass(frozen=True)
class LayerSpec:
    """One layer: its tensors and compute cost.

    Attributes:
        name: layer name.
        kind: coarse op class used by the GPU cost model — ``"conv"``,
            ``"gemm"``, ``"norm"``, ``"elementwise"`` or ``"embedding"``.
            Different classes achieve different fractions of peak FLOP/s.
        params: learnable tensors of this layer (may be empty, e.g. pooling).
        forward_flops: per-sample forward FLOPs (multiply-add = 2 FLOPs).
        backward_flops_multiple: BP cost as a multiple of forward (2.0 for
            layers that compute both input and weight gradients; 1.0 for
            parameterless layers that only propagate the input gradient).
        output_elements: per-sample activation elements this layer produces
            (kept for the backward pass; drives the memory model).
    """

    name: str
    kind: str
    params: Tuple[TensorSpec, ...] = ()
    forward_flops: float = 0.0
    backward_flops_multiple: float = 2.0
    output_elements: float = 0.0

    @property
    def backward_flops(self) -> float:
        """Per-sample backward FLOPs."""
        return self.forward_flops * self.backward_flops_multiple

    @property
    def num_parameters(self) -> int:
        return sum(t.size for t in self.params)


@dataclass(frozen=True)
class ModelSpec:
    """A full model skeleton in forward order."""

    name: str
    layers: Tuple[LayerSpec, ...]
    default_batch_size: int
    description: str = ""

    @property
    def num_parameters(self) -> int:
        """Total learnable elements."""
        return sum(layer.num_parameters for layer in self.layers)

    @property
    def num_tensors(self) -> int:
        """Number of learnable tensors (each is one all-reduce without TF)."""
        return sum(len(layer.params) for layer in self.layers)

    @property
    def parameter_bytes(self) -> int:
        """fp32 model size in bytes."""
        return self.num_parameters * FP32_BYTES

    def forward_flops(self, batch_size: int) -> float:
        """Total forward FLOPs for a batch."""
        return batch_size * sum(layer.forward_flops for layer in self.layers)

    def backward_flops(self, batch_size: int) -> float:
        """Total backward FLOPs for a batch."""
        return batch_size * sum(layer.backward_flops for layer in self.layers)

    def activation_elements(self, batch_size: int) -> float:
        """Total activation elements held for backward, for a batch."""
        return batch_size * sum(layer.output_elements for layer in self.layers)

    def parameter_shapes(self) -> List[Tuple[int, ...]]:
        """All tensor shapes, forward order (input for Table I analytics)."""
        return [t.shape for layer in self.layers for t in layer.params]

    def tensors(self) -> Iterator[TensorSpec]:
        """All tensors in forward order."""
        for layer in self.layers:
            yield from layer.params

    def backward_layers(self) -> Tuple[LayerSpec, ...]:
        """Layers in BP order (reverse of forward)."""
        return tuple(reversed(self.layers))


def conv_layer(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_hw: int,
    bias: bool = False,
) -> LayerSpec:
    """Build a conv LayerSpec with exact GEMM-equivalent FLOPs.

    ``flops = 2 * out_h * out_w * out_c * in_c * k * k`` per sample.
    """
    params = [TensorSpec(f"{name}.weight", (out_channels, in_channels, kernel, kernel))]
    if bias:
        params.append(TensorSpec(f"{name}.bias", (out_channels,)))
    flops = 2.0 * out_hw * out_hw * out_channels * in_channels * kernel * kernel
    return LayerSpec(name, "conv", tuple(params), flops,
                     output_elements=float(out_channels * out_hw * out_hw))


def bn_layer(name: str, channels: int, out_hw: int) -> LayerSpec:
    """BatchNorm2d LayerSpec (vector params, memory-bound compute)."""
    params = (
        TensorSpec(f"{name}.weight", (channels,)),
        TensorSpec(f"{name}.bias", (channels,)),
    )
    flops = 8.0 * channels * out_hw * out_hw  # stats + normalize + affine
    return LayerSpec(name, "norm", params, flops,
                     output_elements=float(channels * out_hw * out_hw))


def linear_layer(
    name: str, in_features: int, out_features: int, bias: bool = True,
    tokens: int = 1,
) -> LayerSpec:
    """Dense LayerSpec; ``tokens`` multiplies FLOPs for sequence models."""
    params = [TensorSpec(f"{name}.weight", (out_features, in_features))]
    if bias:
        params.append(TensorSpec(f"{name}.bias", (out_features,)))
    flops = 2.0 * in_features * out_features * tokens
    return LayerSpec(name, "gemm", tuple(params), flops,
                     output_elements=float(out_features * tokens))
