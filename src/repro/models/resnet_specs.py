"""Exact layer inventories of ResNet-18/50/152 (He et al., CVPR 2016).

Architectures follow torchvision's ImageNet ResNets at the paper's input
size (3 x 224 x 224): 7x7 stem, four stages of basic (ResNet-18) or
bottleneck (ResNet-50/152) blocks, global average pool, 1000-way FC.
Parameter counts are validated against the paper's Table I (25.6M for
ResNet-50, 60.2M for ResNet-152) by the test suite.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.models.spec import (
    LayerSpec,
    ModelSpec,
    TensorSpec,
    bn_layer,
    conv_layer,
    linear_layer,
)


def _stem(layers: List[LayerSpec]) -> None:
    """7x7/2 conv stem + BN + max-pool (224 -> 56)."""
    layers.append(conv_layer("conv1", 3, 64, 7, out_hw=112))
    layers.append(bn_layer("bn1", 64, out_hw=112))
    layers.append(LayerSpec("maxpool", "elementwise", (), 64 * 112 * 112 * 1.0,
                            1.0, output_elements=float(64 * 56 * 56)))


def _bottleneck(
    layers: List[LayerSpec],
    name: str,
    in_channels: int,
    width: int,
    stride: int,
    in_hw: int,
) -> int:
    """Append one bottleneck block (1x1 -> 3x3 -> 1x1, expansion 4).

    Returns the block's output channel count. Stride (when 2) sits on the
    3x3 conv, as in torchvision.
    """
    out_channels = width * 4
    out_hw = in_hw // stride
    layers.append(conv_layer(f"{name}.conv1", in_channels, width, 1, out_hw=in_hw))
    layers.append(bn_layer(f"{name}.bn1", width, out_hw=in_hw))
    layers.append(conv_layer(f"{name}.conv2", width, width, 3, out_hw=out_hw))
    layers.append(bn_layer(f"{name}.bn2", width, out_hw=out_hw))
    layers.append(conv_layer(f"{name}.conv3", width, out_channels, 1, out_hw=out_hw))
    layers.append(bn_layer(f"{name}.bn3", out_channels, out_hw=out_hw))
    if stride != 1 or in_channels != out_channels:
        layers.append(
            conv_layer(f"{name}.downsample.0", in_channels, out_channels, 1, out_hw=out_hw)
        )
        layers.append(bn_layer(f"{name}.downsample.1", out_channels, out_hw=out_hw))
    return out_channels


def _basic(
    layers: List[LayerSpec],
    name: str,
    in_channels: int,
    width: int,
    stride: int,
    in_hw: int,
) -> int:
    """Append one basic block (3x3 -> 3x3, expansion 1)."""
    out_hw = in_hw // stride
    layers.append(conv_layer(f"{name}.conv1", in_channels, width, 3, out_hw=out_hw))
    layers.append(bn_layer(f"{name}.bn1", width, out_hw=out_hw))
    layers.append(conv_layer(f"{name}.conv2", width, width, 3, out_hw=out_hw))
    layers.append(bn_layer(f"{name}.bn2", width, out_hw=out_hw))
    if stride != 1 or in_channels != width:
        layers.append(
            conv_layer(f"{name}.downsample.0", in_channels, width, 1, out_hw=out_hw)
        )
        layers.append(bn_layer(f"{name}.downsample.1", width, out_hw=out_hw))
    return width


def _resnet_spec(
    name: str,
    block_counts: Sequence[int],
    bottleneck: bool,
    default_batch_size: int,
) -> ModelSpec:
    layers: List[LayerSpec] = []
    _stem(layers)
    widths = (64, 128, 256, 512)
    hw = 56
    channels = 64
    for stage, (width, count) in enumerate(zip(widths, block_counts), start=1):
        for block in range(count):
            stride = 2 if (stage > 1 and block == 0) else 1
            block_name = f"layer{stage}.{block}"
            if bottleneck:
                channels = _bottleneck(layers, block_name, channels, width, stride, hw)
            else:
                channels = _basic(layers, block_name, channels, width, stride, hw)
            hw //= stride
    layers.append(LayerSpec("avgpool", "elementwise", (),
                            channels * hw * hw * 1.0, 1.0,
                            output_elements=float(channels)))
    layers.append(linear_layer("fc", channels, 1000, bias=True))
    return ModelSpec(
        name=name,
        layers=tuple(layers),
        default_batch_size=default_batch_size,
        description=f"{name} at 3x224x224 (ImageNet), torchvision layout",
    )


def resnet18_spec(batch_size: int = 128) -> ModelSpec:
    """ResNet-18 (basic blocks 2-2-2-2), ~11.7M parameters."""
    return _resnet_spec("ResNet-18", (2, 2, 2, 2), bottleneck=False,
                        default_batch_size=batch_size)


def resnet50_spec(batch_size: int = 64) -> ModelSpec:
    """ResNet-50 (bottleneck 3-4-6-3), ~25.6M parameters (paper Table I)."""
    return _resnet_spec("ResNet-50", (3, 4, 6, 3), bottleneck=True,
                        default_batch_size=batch_size)


def resnet152_spec(batch_size: int = 32) -> ModelSpec:
    """ResNet-152 (bottleneck 3-8-36-3), ~60.2M parameters (paper Table I)."""
    return _resnet_spec("ResNet-152", (3, 8, 36, 3), bottleneck=True,
                        default_batch_size=batch_size)
