"""Exact layer inventories of BERT-Base and BERT-Large (Devlin et al., 2019).

Encoder-only BERT with pooler, WordPiece vocab 30522, max position 512,
evaluated at the paper's input sequence length of 64. Parameter counts are
validated against the paper's Table I (110.1M base, 336.2M large).

FLOP accounting per token: the four attention projections and the two FFN
GEMMs dominate (~24 S H^2 per layer for sequence length S), plus the
attention score/context products (~4 S^2 H).
"""

from __future__ import annotations

from typing import List

from repro.models.spec import LayerSpec, ModelSpec, TensorSpec, linear_layer


def _layer_norm(name: str, hidden: int, seq_len: int) -> LayerSpec:
    params = (
        TensorSpec(f"{name}.weight", (hidden,)),
        TensorSpec(f"{name}.bias", (hidden,)),
    )
    return LayerSpec(name, "norm", params, 8.0 * hidden * seq_len,
                     output_elements=float(hidden * seq_len))


def _embeddings(layers: List[LayerSpec], hidden: int, seq_len: int,
                vocab: int, max_pos: int) -> None:
    layers.append(
        LayerSpec(
            "embeddings.word_embeddings",
            "embedding",
            (TensorSpec("embeddings.word_embeddings.weight", (vocab, hidden)),),
            2.0 * hidden * seq_len,  # lookup + add, memory bound
            output_elements=float(hidden * seq_len),
        )
    )
    layers.append(
        LayerSpec(
            "embeddings.position_embeddings",
            "embedding",
            (TensorSpec("embeddings.position_embeddings.weight", (max_pos, hidden)),),
            2.0 * hidden * seq_len,
        )
    )
    layers.append(
        LayerSpec(
            "embeddings.token_type_embeddings",
            "embedding",
            (TensorSpec("embeddings.token_type_embeddings.weight", (2, hidden)),),
            2.0 * hidden * seq_len,
        )
    )
    layers.append(_layer_norm("embeddings.LayerNorm", hidden, seq_len))


def _encoder_layer(layers: List[LayerSpec], idx: int, hidden: int,
                   intermediate: int, seq_len: int) -> None:
    prefix = f"encoder.layer.{idx}"
    for proj in ("query", "key", "value"):
        layers.append(
            linear_layer(f"{prefix}.attention.self.{proj}", hidden, hidden,
                         bias=True, tokens=seq_len)
        )
    # Attention scores (Q K^T) and context (A V): 2 * 2 * S^2 * H per sample.
    heads = hidden // 64
    layers.append(
        LayerSpec(f"{prefix}.attention.scores", "gemm", (),
                  4.0 * seq_len * seq_len * hidden, 2.0,
                  output_elements=float(heads * seq_len * seq_len
                                        + hidden * seq_len))
    )
    layers.append(
        linear_layer(f"{prefix}.attention.output.dense", hidden, hidden,
                     bias=True, tokens=seq_len)
    )
    layers.append(_layer_norm(f"{prefix}.attention.output.LayerNorm", hidden, seq_len))
    layers.append(
        linear_layer(f"{prefix}.intermediate.dense", hidden, intermediate,
                     bias=True, tokens=seq_len)
    )
    layers.append(
        linear_layer(f"{prefix}.output.dense", intermediate, hidden,
                     bias=True, tokens=seq_len)
    )
    layers.append(_layer_norm(f"{prefix}.output.LayerNorm", hidden, seq_len))


def _bert_spec(name: str, hidden: int, num_layers: int, seq_len: int,
               default_batch_size: int) -> ModelSpec:
    layers: List[LayerSpec] = []
    _embeddings(layers, hidden, seq_len, vocab=30522, max_pos=512)
    for idx in range(num_layers):
        _encoder_layer(layers, idx, hidden, 4 * hidden, seq_len)
    layers.append(linear_layer("pooler.dense", hidden, hidden, bias=True, tokens=1))
    return ModelSpec(
        name=name,
        layers=tuple(layers),
        default_batch_size=default_batch_size,
        description=f"{name} encoder (+pooler) at sequence length {seq_len}",
    )


def bert_base_spec(batch_size: int = 32, seq_len: int = 64) -> ModelSpec:
    """BERT-Base: H=768, 12 layers, ~110.1M parameters (paper Table I)."""
    return _bert_spec("BERT-Base", 768, 12, seq_len, batch_size)


def bert_large_spec(batch_size: int = 8, seq_len: int = 64) -> ModelSpec:
    """BERT-Large: H=1024, 24 layers, ~336.2M parameters (paper Table I)."""
    return _bert_spec("BERT-Large", 1024, 24, seq_len, batch_size)
