"""VGG-16 layer inventory (Simonyan & Zisserman, ICLR 2015).

Configuration D with batch-norm omitted (classic VGG-16), at 3x224x224.
Used for the convergence discussion and as an extra communication-heavy
workload (138M parameters, two-thirds of them in the first FC layer —
the classic example of a model whose FC gradient matrix low-rank
compression shrinks dramatically).
"""

from __future__ import annotations

from typing import List

from repro.models.spec import LayerSpec, ModelSpec, conv_layer, linear_layer

_CFG_D = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
          512, 512, 512, "M", 512, 512, 512, "M"]


def vgg16_spec(batch_size: int = 32) -> ModelSpec:
    """VGG-16 (config D) at 3x224x224, ~138M parameters."""
    layers: List[LayerSpec] = []
    hw = 224
    channels = 3
    conv_idx = 0
    for item in _CFG_D:
        if item == "M":
            layers.append(
                LayerSpec(f"pool{conv_idx}", "elementwise", (),
                          channels * hw * hw * 1.0, 1.0,
                          output_elements=float(channels * (hw // 2) ** 2))
            )
            hw //= 2
            continue
        layers.append(
            conv_layer(f"features.{conv_idx}", channels, int(item), 3, out_hw=hw,
                       bias=True)
        )
        channels = int(item)
        conv_idx += 1
    layers.append(linear_layer("classifier.0", 512 * 7 * 7, 4096, bias=True))
    layers.append(linear_layer("classifier.3", 4096, 4096, bias=True))
    layers.append(linear_layer("classifier.6", 4096, 1000, bias=True))
    return ModelSpec(
        name="VGG-16",
        layers=tuple(layers),
        default_batch_size=batch_size,
        description="VGG-16 (config D, no BN) at 3x224x224",
    )
