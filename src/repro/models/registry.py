"""Name-indexed access to the paper's model specs and batch sizes.

The paper's §III-A settings: per-GPU batch sizes of 64 (ResNet-50),
32 (ResNet-152), 32 (BERT-Base), 8 (BERT-Large); 3x224x224 images and
sequence length 64.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.bert_specs import bert_base_spec, bert_large_spec
from repro.models.resnet_specs import resnet18_spec, resnet50_spec, resnet152_spec
from repro.models.spec import ModelSpec
from repro.models.vgg_specs import vgg16_spec

_BUILDERS: Dict[str, Callable[[], ModelSpec]] = {
    "ResNet-18": resnet18_spec,
    "ResNet-50": resnet50_spec,
    "ResNet-152": resnet152_spec,
    "VGG-16": vgg16_spec,
    "BERT-Base": bert_base_spec,
    "BERT-Large": bert_large_spec,
}

_PAPER_BATCH_SIZES: Dict[str, int] = {
    "ResNet-50": 64,
    "ResNet-152": 32,
    "BERT-Base": 32,
    "BERT-Large": 8,
    "ResNet-18": 128,
    "VGG-16": 32,
}

# The paper's Power-SGD rank choices: r=4 for ResNets, r=32 for BERTs.
PAPER_RANKS: Dict[str, int] = {
    "ResNet-18": 4,
    "ResNet-50": 4,
    "ResNet-152": 4,
    "VGG-16": 4,
    "BERT-Base": 32,
    "BERT-Large": 32,
}

MODEL_SPECS = tuple(_BUILDERS)


def get_model_spec(name: str) -> ModelSpec:
    """Build the spec for a model by its paper name (e.g. ``"ResNet-50"``)."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(_BUILDERS))}"
        )
    return builder()


def paper_batch_size(name: str) -> int:
    """The per-GPU batch size the paper uses for this model (§III-A)."""
    if name not in _PAPER_BATCH_SIZES:
        raise KeyError(f"no paper batch size recorded for {name!r}")
    return _PAPER_BATCH_SIZES[name]
