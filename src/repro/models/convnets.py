"""Runnable numpy models for the convergence experiments (Fig. 6 / Fig. 7).

The paper trains VGG-16 and ResNet-18 on CIFAR-10 for 300 epochs on GPUs;
on CPU-only numpy we train faithfully scaled-down versions of the same two
architecture families on a synthetic CIFAR-like dataset (see
:mod:`repro.train.datasets`). The architectural features that matter to the
compression algorithms are preserved: stacked 3x3 convolutions, batch norm,
residual connections (ResNet variant), and matrix-shaped FC/conv gradients
that the low-rank compressors operate on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn


class ResidualBlock(nn.Module):
    """Basic 3x3-3x3 residual block with identity or 1x1-projection skip."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1,
                               padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu2 = nn.ReLU()
        self.shortcut: Optional[nn.Sequential] = None
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride,
                          bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        identity = self.shortcut(x) if self.shortcut is not None else x
        return self.relu2(out + identity)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_output)
        # Branch gradient...
        grad_branch = self.conv2.backward(self.bn2.backward(grad_sum))
        grad_branch = self.conv1.backward(
            self.bn1.backward(self.relu1.backward(grad_branch))
        )
        # ...plus skip gradient.
        if self.shortcut is not None:
            grad_skip = self.shortcut.backward(grad_sum)
        else:
            grad_skip = grad_sum
        return grad_branch + grad_skip


class SmallResNet(nn.Module):
    """ResNet-18-style CIFAR model: 3 stages of basic blocks + GAP + FC."""

    def __init__(
        self,
        num_classes: int = 10,
        base_width: int = 8,
        blocks_per_stage: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stem = nn.Sequential(
            nn.Conv2d(3, base_width, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(base_width),
            nn.ReLU(),
        )
        stages = []
        channels = base_width
        for stage in range(3):
            out_channels = base_width * (2**stage)
            for block in range(blocks_per_stage):
                stride = 2 if (stage > 0 and block == 0) else 1
                stages.append(ResidualBlock(channels, out_channels, stride, rng=rng))
                channels = out_channels
        self.stages = stages
        self.head = nn.Sequential(
            nn.GlobalAvgPool2d(),
            nn.Linear(channels, num_classes, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        for block in self.stages:
            x = block(x)
        return self.head(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        for block in reversed(self.stages):
            grad = block.backward(grad)
        return self.stem.backward(grad)


def make_small_vgg(
    num_classes: int = 10,
    base_width: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> nn.Sequential:
    """VGG-style CIFAR model: 3 conv stages (2 convs each) + FC head."""
    rng = rng if rng is not None else np.random.default_rng(0)
    w = base_width
    return nn.Sequential(
        nn.Conv2d(3, w, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(w),
        nn.ReLU(),
        nn.Conv2d(w, w, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(w),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(w, 2 * w, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(2 * w),
        nn.ReLU(),
        nn.Conv2d(2 * w, 2 * w, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(2 * w),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(2 * w, 4 * w, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(4 * w),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.GlobalAvgPool2d(),
        nn.Linear(4 * w, 8 * w, rng=rng),
        nn.ReLU(),
        nn.Linear(8 * w, num_classes, rng=rng),
    )


def make_small_resnet(
    num_classes: int = 10,
    base_width: int = 8,
    blocks_per_stage: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> SmallResNet:
    """Factory mirroring :func:`make_small_vgg` for the ResNet variant."""
    return SmallResNet(num_classes, base_width, blocks_per_stage, rng=rng)


def make_mlp(
    in_features: int,
    hidden: int,
    num_classes: int,
    depth: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> nn.Sequential:
    """Plain MLP, used in unit tests and the quickstart example."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    rng = rng if rng is not None else np.random.default_rng(0)
    layers = [nn.Linear(in_features, hidden, rng=rng), nn.ReLU()]
    for _ in range(depth - 1):
        layers.extend([nn.Linear(hidden, hidden, rng=rng), nn.ReLU()])
    layers.append(nn.Linear(hidden, num_classes, rng=rng))
    return nn.Sequential(*layers)
