"""Collective communication algorithms over in-process per-rank buffers.

A "collective" here takes one numpy array per rank and returns the per-rank
results, exactly as if ``world_size`` processes had each called the collective
on their own buffer. The ring all-reduce is implemented as the textbook
bandwidth-optimal algorithm (Thakur et al. [10] in the paper): a
reduce-scatter phase of ``p - 1`` steps followed by an all-gather phase of
``p - 1`` steps, with the buffer split into ``p`` chunks. Data genuinely moves
between per-rank buffers step by step; nothing takes the shortcut of a global
sum, so tests can check both the numerics and the traffic accounting.

Traffic accounting: each collective returns a :class:`CollectiveStats`
recording bytes sent per rank and the step count, which the test suite uses to
verify the communication-complexity column of the paper's Table II
(``2(p-1)/p * N`` elements per rank for ring all-reduce, ``(p-1)/p * N`` for
reduce-scatter/all-gather phases, ``(p-1) * N`` aggregate for all-gather).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class CollectiveStats:
    """Measured traffic of one collective call.

    Attributes:
        algorithm: name of the collective algorithm.
        world_size: number of participating ranks.
        bytes_sent_per_rank: bytes each rank pushed onto the wire. For the
            symmetric ring algorithms every rank sends the same amount.
        steps: number of communication rounds (each round is one send/recv
            per rank, all rings progressing in parallel).
        delay_s: simulated extra wall time attributed to this call by the
            fault layer (straggler waits, retry backoff); 0 for clean calls.
    """

    algorithm: str
    world_size: int
    bytes_sent_per_rank: List[int] = field(default_factory=list)
    steps: int = 0
    delay_s: float = 0.0

    @property
    def total_bytes(self) -> int:
        """Aggregate bytes moved across all ranks."""
        return int(sum(self.bytes_sent_per_rank))


def _check_inputs(buffers: Sequence[np.ndarray]) -> Tuple[int, Tuple[int, ...]]:
    """Validate per-rank buffers and return (world_size, shape)."""
    if len(buffers) == 0:
        raise ValueError("collective requires at least one rank buffer")
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    for rank, buf in enumerate(buffers):
        if buf.shape != shape:
            raise ValueError(
                f"rank {rank} buffer shape {buf.shape} != rank 0 shape {shape}"
            )
        if buf.dtype != dtype:
            raise ValueError(
                f"rank {rank} buffer dtype {buf.dtype} != rank 0 dtype {dtype}"
            )
    return len(buffers), shape


def _check_dtypes(buffers: Sequence[np.ndarray]) -> int:
    """Validate per-rank buffers whose *shapes* may legitimately differ.

    Used by :func:`all_gather` and :func:`gather`, whose payload sizes vary
    across ranks (Top-k threshold sampling); dtypes must still agree or the
    receiver would silently misinterpret the bytes. Returns the world size.
    """
    if len(buffers) == 0:
        raise ValueError("collective requires at least one rank buffer")
    dtype = buffers[0].dtype
    for rank, buf in enumerate(buffers[1:], start=1):
        if buf.dtype != dtype:
            raise ValueError(
                f"rank {rank} buffer dtype {buf.dtype} != rank 0 dtype {dtype}"
            )
    return len(buffers)


def _chunk_bounds(length: int, num_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(length)`` into ``num_chunks`` contiguous chunks.

    The first ``length % num_chunks`` chunks get one extra element, matching
    how NCCL pads uneven divisions. Empty chunks are allowed when
    ``length < num_chunks``.
    """
    base = length // num_chunks
    extra = length % num_chunks
    bounds = []
    start = 0
    for idx in range(num_chunks):
        size = base + (1 if idx < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def all_reduce_naive(
    buffers: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Reference all-reduce: gather-to-root, sum, broadcast.

    Used only as a correctness oracle for :func:`all_reduce_ring` and as the
    "parameter server"-style baseline whose traffic is linear in ``p`` at the
    root.
    """
    world_size, _ = _check_inputs(buffers)
    total = buffers[0].astype(np.float64, copy=True)
    for buf in buffers[1:]:
        total = total + buf.astype(np.float64)
    result = total.astype(buffers[0].dtype)
    nbytes = result.nbytes
    stats = CollectiveStats(
        algorithm="allreduce_naive",
        world_size=world_size,
        # Non-root ranks send once to root; root sends the result back p-1
        # times. Rank 0 plays root.
        bytes_sent_per_rank=[nbytes * (world_size - 1)]
        + [nbytes] * (world_size - 1),
        steps=2,
    )
    return [result.copy() for _ in range(world_size)], stats


def all_reduce_ring(
    buffers: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Bandwidth-optimal ring all-reduce (sum) over per-rank buffers.

    Phase 1 (reduce-scatter): in step ``s``, rank ``r`` sends chunk
    ``(r - s) mod p`` to rank ``r + 1`` which accumulates it. After ``p - 1``
    steps rank ``r`` owns the fully reduced chunk ``(r + 1) mod p``.

    Phase 2 (all-gather): reduced chunks circulate around the ring for
    another ``p - 1`` steps until every rank holds the full reduced buffer.

    Per-rank traffic is ``2 * (p - 1) / p * N`` elements — the Table II
    figure for S-SGD and Power-SGD communication.
    """
    world_size, shape = _check_inputs(buffers)
    if world_size == 1:
        out = [buffers[0].copy()]
        return out, CollectiveStats("allreduce_ring", 1, [0], 0)

    flat = [buf.reshape(-1).astype(np.float64, copy=True) for buf in buffers]
    length = flat[0].shape[0]
    bounds = _chunk_bounds(length, world_size)
    elem_bytes = buffers[0].dtype.itemsize
    sent = [0] * world_size

    # Reduce-scatter phase.
    for step in range(world_size - 1):
        # All sends in a step happen "simultaneously": snapshot the outgoing
        # chunks before applying any accumulation.
        outgoing = []
        for rank in range(world_size):
            chunk_idx = (rank - step) % world_size
            lo, hi = bounds[chunk_idx]
            outgoing.append((chunk_idx, flat[rank][lo:hi].copy()))
            sent[rank] += (hi - lo) * elem_bytes
        for rank in range(world_size):
            dst = (rank + 1) % world_size
            chunk_idx, payload = outgoing[rank]
            lo, hi = bounds[chunk_idx]
            flat[dst][lo:hi] += payload

    # All-gather phase: rank r owns reduced chunk (r + 1) mod p.
    for step in range(world_size - 1):
        outgoing = []
        for rank in range(world_size):
            chunk_idx = (rank + 1 - step) % world_size
            lo, hi = bounds[chunk_idx]
            outgoing.append((chunk_idx, flat[rank][lo:hi].copy()))
            sent[rank] += (hi - lo) * elem_bytes
        for rank in range(world_size):
            dst = (rank + 1) % world_size
            chunk_idx, payload = outgoing[rank]
            lo, hi = bounds[chunk_idx]
            flat[dst][lo:hi] = payload

    results = [
        arr.astype(buffers[0].dtype).reshape(shape) for arr in flat
    ]
    stats = CollectiveStats(
        algorithm="allreduce_ring",
        world_size=world_size,
        bytes_sent_per_rank=sent,
        steps=2 * (world_size - 1),
    )
    return results, stats


class RingScratch:
    """Preallocated snapshot storage for the in-place ring collectives.

    The copying ring allocates one chunk copy per rank per step (the
    "simultaneous send" snapshot). The in-place variant snapshots into this
    reusable block instead, so a steady-state training loop performs zero
    per-step allocations on the collective path. The block grows
    monotonically to the largest ``(world_size, chunk)`` ever requested and
    is then reused for every later call.
    """

    def __init__(self) -> None:
        self._block: np.ndarray = np.zeros((0, 0), dtype=np.float64)

    def get(self, world_size: int, chunk: int) -> np.ndarray:
        """A ``(world_size, chunk)`` float64 view, reallocating only to grow."""
        rows, cols = self._block.shape
        if rows < world_size or cols < chunk:
            self._block = np.zeros(
                (max(rows, world_size), max(cols, chunk)), dtype=np.float64
            )
        return self._block[:world_size, :chunk]


def all_reduce_ring_inplace(
    buffers: Sequence[np.ndarray],
    scratch: Optional[RingScratch] = None,
) -> CollectiveStats:
    """Ring all-reduce (sum) that aggregates **in place** in ``buffers``.

    Runs the exact same chunk schedule as :func:`all_reduce_ring` — same
    accumulation order, hence bit-identical results — but with the arena's
    cost profile: per-rank buffers are reduced where they live (no input
    cast-copy, no output cast-copy) and the reduce-scatter snapshot reuses
    a preallocated :class:`RingScratch` block instead of allocating one
    chunk copy per rank per step.

    Requirements: 1-D float64 C-contiguous writable buffers of equal
    length, no two of which alias the same array. The fused arena slabs
    satisfy this by construction. On return every buffer holds the summed
    result (like an NCCL in-place all-reduce); the original per-rank
    payloads are destroyed, which is why groups that may need to
    retransmit originals (CRC-checked resilient groups) must not use it.
    """
    world_size = len(buffers)
    if world_size == 0:
        raise ValueError("collective requires at least one rank buffer")
    length = buffers[0].shape[0]
    for rank, buf in enumerate(buffers):
        if buf.ndim != 1 or buf.shape[0] != length:
            raise ValueError(
                f"rank {rank} buffer shape {buf.shape} != 1-D length {length}"
            )
        if buf.dtype != np.float64:
            raise ValueError(
                f"in-place all-reduce requires float64 buffers, "
                f"rank {rank} has {buf.dtype}"
            )
        if not buf.flags.writeable or not buf.flags.c_contiguous:
            raise ValueError(
                f"rank {rank} buffer must be writable and C-contiguous"
            )
    if world_size == 1:
        return CollectiveStats("allreduce_ring_inplace", 1, [0], 0)

    bounds = _chunk_bounds(length, world_size)
    max_chunk = max(hi - lo for lo, hi in bounds)
    scratch = scratch if scratch is not None else RingScratch()
    snapshot = scratch.get(world_size, max_chunk)
    elem_bytes = buffers[0].dtype.itemsize
    sent = [0] * world_size

    # Reduce-scatter phase. All sends in a step happen "simultaneously":
    # snapshot the outgoing chunks into the scratch block, then accumulate.
    for step in range(world_size - 1):
        sizes = []
        for rank in range(world_size):
            chunk_idx = (rank - step) % world_size
            lo, hi = bounds[chunk_idx]
            snapshot[rank, : hi - lo] = buffers[rank][lo:hi]
            sizes.append((chunk_idx, hi - lo))
            sent[rank] += (hi - lo) * elem_bytes
        for rank in range(world_size):
            dst = (rank + 1) % world_size
            chunk_idx, size = sizes[rank]
            lo, hi = bounds[chunk_idx]
            buffers[dst][lo:hi] += snapshot[rank, :size]

    # All-gather phase: pure chunk copies. Within a step, the chunk rank r
    # reads ((r + 1 - s) mod p) and the chunk written into rank r
    # ((r - s) mod p) are always distinct, so direct writes are equivalent
    # to the snapshot-then-write schedule — no scratch needed.
    for step in range(world_size - 1):
        writes = []
        for rank in range(world_size):
            chunk_idx = (rank + 1 - step) % world_size
            lo, hi = bounds[chunk_idx]
            writes.append((rank, chunk_idx))
            sent[rank] += (hi - lo) * elem_bytes
        for rank, chunk_idx in writes:
            dst = (rank + 1) % world_size
            lo, hi = bounds[chunk_idx]
            buffers[dst][lo:hi] = buffers[rank][lo:hi]

    return CollectiveStats(
        algorithm="allreduce_ring_inplace",
        world_size=world_size,
        bytes_sent_per_rank=sent,
        steps=2 * (world_size - 1),
    )


def _segment_ring_traffic(
    seg_start: int,
    seg_len: int,
    total_length: int,
    world_size: int,
    elem_bytes: int,
) -> List[int]:
    """Per-rank bytes of the monolithic ring schedule restricted to a segment.

    In the reduce-scatter phase rank ``r`` sends every chunk except
    ``(r + 1) mod p`` (the one it ends up owning); in the all-gather phase
    every chunk except ``(r + 2) mod p``. A bucketed collective moves only
    each chunk's overlap with its segment, so summing this accounting over
    all buckets reproduces the monolithic ring traffic exactly.
    """
    bounds = _chunk_bounds(total_length, world_size)
    overlaps = [
        max(0, min(hi, seg_start + seg_len) - max(lo, seg_start))
        for lo, hi in bounds
    ]
    sent = [0] * world_size
    for rank in range(world_size):
        for chunk, overlap in enumerate(overlaps):
            if chunk != (rank + 1) % world_size:
                sent[rank] += overlap * elem_bytes
            if chunk != (rank + 2) % world_size:
                sent[rank] += overlap * elem_bytes
    return sent


def all_reduce_ring_segment_(
    buffers: Sequence[np.ndarray],
    seg_start: int,
    total_length: int,
    scratch: Optional[RingScratch] = None,
) -> CollectiveStats:
    """In-place ring all-reduce of one *segment* of a logical fused buffer.

    ``buffers`` are the per-rank views of elements
    ``[seg_start, seg_start + len)`` of a logical buffer of
    ``total_length`` elements (a tensor-fusion bucket of an arena slab).
    The chunk schedule is derived from ``total_length`` — the **monolithic**
    buffer's chunk bounds — so reducing every bucket of a slab through this
    function yields bit-identical values to one fused
    :func:`all_reduce_ring_inplace` call over the whole slab:

    - the ring accumulates each element of chunk ``c`` in ascending rank
      order starting at rank ``c`` (``g_c``, then ``g_{c+1}``, ...), an
      order that depends only on the element's *global* chunk index;
    - IEEE addition is commutative (only association changes results), so
      folding the same operands in the same association over a segment view
      reproduces the fused result exactly, element by element.

    Traffic accounting likewise replicates the monolithic schedule
    restricted to the segment, so per-bucket stats sum to the fused stats.
    Requirements match :func:`all_reduce_ring_inplace`: 1-D float64
    C-contiguous writable non-aliasing buffers of equal length.
    """
    world_size = len(buffers)
    if world_size == 0:
        raise ValueError("collective requires at least one rank buffer")
    seg_len = buffers[0].shape[0]
    if not 0 <= seg_start <= seg_start + seg_len <= total_length:
        raise ValueError(
            f"segment [{seg_start}, {seg_start + seg_len}) out of range for "
            f"total length {total_length}"
        )
    for rank, buf in enumerate(buffers):
        if buf.ndim != 1 or buf.shape[0] != seg_len:
            raise ValueError(
                f"rank {rank} buffer shape {buf.shape} != 1-D length {seg_len}"
            )
        if buf.dtype != np.float64:
            raise ValueError(
                f"segment all-reduce requires float64 buffers, "
                f"rank {rank} has {buf.dtype}"
            )
        if not buf.flags.writeable or not buf.flags.c_contiguous:
            raise ValueError(
                f"rank {rank} buffer must be writable and C-contiguous"
            )
    if world_size == 1:
        return CollectiveStats("allreduce_ring_segment", 1, [0], 0)

    bounds = _chunk_bounds(total_length, world_size)
    scratch = scratch if scratch is not None else RingScratch()
    acc_row = scratch.get(1, max(1, seg_len))[0]
    for chunk, (lo, hi) in enumerate(bounds):
        olo = max(lo, seg_start)
        ohi = min(hi, seg_start + seg_len)
        if olo >= ohi:
            continue
        a, b = olo - seg_start, ohi - seg_start
        acc = acc_row[: b - a]
        # Fold in the monolithic ring's per-element order: start at the
        # chunk-index rank, then ascending ranks around the ring.
        np.copyto(acc, buffers[chunk % world_size][a:b])
        for hop in range(1, world_size):
            acc += buffers[(chunk + hop) % world_size][a:b]
        for rank in range(world_size):
            buffers[rank][a:b] = acc

    return CollectiveStats(
        algorithm="allreduce_ring_segment",
        world_size=world_size,
        bytes_sent_per_rank=_segment_ring_traffic(
            seg_start, seg_len, total_length, world_size,
            buffers[0].dtype.itemsize,
        ),
        steps=2 * (world_size - 1),
    )


def all_reduce_ring_segment(
    buffers: Sequence[np.ndarray],
    seg_start: int,
    total_length: int,
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Copying variant of :func:`all_reduce_ring_segment_`.

    Leaves the inputs untouched (groups that may retransmit originals on a
    detected fault need the payloads intact) and returns per-rank result
    arrays, all holding the reduced segment.
    """
    work = [
        buf.reshape(-1).astype(np.float64, copy=True) for buf in buffers
    ]
    stats = all_reduce_ring_segment_(work, seg_start, total_length)
    return work, stats


def reduce_scatter(
    buffers: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Ring reduce-scatter: rank ``r`` ends up with reduced chunk ``r``.

    Returns one 1-D chunk per rank (chunks partition the flattened input).
    """
    world_size, _ = _check_inputs(buffers)
    flat = [buf.reshape(-1).astype(np.float64, copy=True) for buf in buffers]
    length = flat[0].shape[0]
    bounds = _chunk_bounds(length, world_size)
    elem_bytes = buffers[0].dtype.itemsize
    sent = [0] * world_size

    if world_size > 1:
        for step in range(world_size - 1):
            outgoing = []
            for rank in range(world_size):
                chunk_idx = (rank - 1 - step) % world_size
                lo, hi = bounds[chunk_idx]
                outgoing.append((chunk_idx, flat[rank][lo:hi].copy()))
                sent[rank] += (hi - lo) * elem_bytes
            for rank in range(world_size):
                dst = (rank + 1) % world_size
                chunk_idx, payload = outgoing[rank]
                lo, hi = bounds[chunk_idx]
                flat[dst][lo:hi] += payload

    results = []
    for rank in range(world_size):
        lo, hi = bounds[rank]
        results.append(flat[rank][lo:hi].astype(buffers[0].dtype))
    stats = CollectiveStats(
        algorithm="reduce_scatter",
        world_size=world_size,
        bytes_sent_per_rank=sent,
        steps=max(0, world_size - 1),
    )
    return results, stats


def all_gather(
    buffers: Sequence[np.ndarray],
) -> Tuple[List[List[np.ndarray]], CollectiveStats]:
    """Ring all-gather: every rank receives every rank's buffer.

    Unlike all-reduce, per-rank inputs may have *different shapes* (Top-k
    payload sizes can differ by a few elements across ranks after threshold
    sampling), so the result is, for each rank, the list of all ranks'
    buffers in rank order.

    Per-rank traffic is ``(p - 1) * N_r`` bytes where ``N_r`` is that rank's
    own payload — the Table II all-gather figure that makes Sign-SGD and
    Top-k SGD scale linearly with ``p``.
    """
    world_size = _check_dtypes(buffers)
    sent = [0] * world_size

    # Each rank's buffer travels p-1 hops around the ring. Model the hops
    # explicitly for the traffic accounting, though the payload is immutable.
    holdings: List[List[np.ndarray]] = [
        [None] * world_size for _ in range(world_size)  # type: ignore[list-item]
    ]
    for rank in range(world_size):
        holdings[rank][rank] = buffers[rank].copy()
    for step in range(world_size - 1):
        moves = []
        for rank in range(world_size):
            src_idx = (rank - step) % world_size
            payload = holdings[rank][src_idx]
            assert payload is not None
            moves.append((src_idx, payload))
            sent[rank] += payload.nbytes
        for rank in range(world_size):
            dst = (rank + 1) % world_size
            src_idx, payload = moves[rank]
            holdings[dst][src_idx] = payload

    stats = CollectiveStats(
        algorithm="all_gather",
        world_size=world_size,
        bytes_sent_per_rank=sent,
        steps=max(0, world_size - 1),
    )
    return holdings, stats


def reduce(
    buffers: Sequence[np.ndarray], root: int = 0
) -> Tuple[np.ndarray, CollectiveStats]:
    """Binomial-tree reduce (sum) to rank ``root``.

    Used by parameter-server-style baselines; ``ceil(log2 p)`` rounds.
    """
    world_size, shape = _check_inputs(buffers)
    if not 0 <= root < world_size:
        raise ValueError(f"root {root} out of range for world size {world_size}")
    # Rotate so the tree reduces to index 0, then map back.
    order = [(root + offset) % world_size for offset in range(world_size)]
    work = [buffers[rank].astype(np.float64, copy=True) for rank in order]
    nbytes = buffers[0].nbytes
    sent = [0] * world_size
    steps = 0
    distance = 1
    while distance < world_size:
        for idx in range(0, world_size, 2 * distance):
            src = idx + distance
            if src < world_size:
                work[idx] = work[idx] + work[src]
                sent[order[src]] += nbytes
        distance *= 2
        steps += 1
    result = work[0].astype(buffers[0].dtype).reshape(shape)
    stats = CollectiveStats("reduce", world_size, sent, steps)
    return result, stats


def gather(
    buffers: Sequence[np.ndarray], root: int = 0
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Gather every rank's buffer to ``root`` (per-rank direct sends).

    Per-rank payloads may differ in shape (like :func:`all_gather`).
    Returns the buffers in rank order as received at the root.
    """
    world_size = _check_dtypes(buffers)
    if not 0 <= root < world_size:
        raise ValueError(f"root {root} out of range for world size {world_size}")
    sent = [buf.nbytes if rank != root else 0
            for rank, buf in enumerate(buffers)]
    stats = CollectiveStats("gather", world_size, sent, 1)
    return [buf.copy() for buf in buffers], stats


def broadcast(
    buffers: Sequence[np.ndarray], root: int = 0
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Broadcast rank ``root``'s buffer to every rank (ring pipeline).

    Used to synchronize initial model weights across workers before training,
    exactly as ``torch.distributed.broadcast`` is used by DDP.
    """
    world_size, _ = _check_inputs(buffers)
    if not 0 <= root < world_size:
        raise ValueError(f"root {root} out of range for world size {world_size}")
    payload = buffers[root].copy()
    sent = [0] * world_size
    # Ring pipeline: root -> root+1 -> ... ; each intermediate forwards once.
    for hop in range(world_size - 1):
        sender = (root + hop) % world_size
        sent[sender] += payload.nbytes
    stats = CollectiveStats(
        algorithm="broadcast",
        world_size=world_size,
        bytes_sent_per_rank=sent,
        steps=max(0, world_size - 1),
    )
    return [payload.copy() for _ in range(world_size)], stats
