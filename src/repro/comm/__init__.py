"""Communication substrate: in-process collectives and network cost models.

This package plays the role NCCL/Gloo play in the paper's testbed:

- :mod:`repro.comm.collectives` implements the collective algorithms
  themselves (chunked ring all-reduce as reduce-scatter + all-gather,
  ring all-gather, broadcast, reduce) operating on one buffer per rank.
  They are *numerically real*: data actually moves chunk by chunk between
  per-rank buffers, and every call records how many bytes each rank sent,
  so Table II's communication complexity can be verified by measurement.
- :mod:`repro.comm.process_group` wraps the collectives in a
  ``ProcessGroup`` object mirroring the ``torch.distributed`` API shape used
  by the distributed optimizers.
- :mod:`repro.comm.cost_model` provides the alpha-beta timing model and the
  paper's three network presets (1GbE, 10GbE, 100Gb InfiniBand), used by the
  performance simulator.
"""

from repro.comm.collectives import (
    CollectiveStats,
    all_gather,
    all_reduce_naive,
    all_reduce_ring,
    all_reduce_ring_segment,
    all_reduce_ring_segment_,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
)
from repro.comm.hierarchical import (
    all_reduce_hierarchical,
    all_reduce_hierarchical_,
    all_reduce_hierarchical_segment,
    all_reduce_hierarchical_segment_,
    hierarchical_steps,
    hierarchical_traffic,
)
from repro.comm.process_group import ProcessGroup
from repro.comm.cost_model import (
    LinkSpec,
    ETHERNET_1G,
    ETHERNET_10G,
    INFINIBAND_100G,
    LINK_PRESETS,
    allgather_time,
    allreduce_time,
    point_to_point_time,
)
from repro.comm.algorithms import (
    all_reduce_recursive_halving,
    all_reduce_tree,
    best_allreduce_algorithm,
    rabenseifner_allreduce_time,
    tree_allreduce_time,
)
from repro.comm.topology import (
    ClusterTopology,
    NVLINK2,
    PCIE3_X16,
    best_allreduce_time,
    crossover_bytes,
    flat_allreduce_time,
    hierarchical_allreduce_time,
)

__all__ = [
    "CollectiveStats",
    "all_gather",
    "all_reduce_naive",
    "all_reduce_ring",
    "all_reduce_ring_segment",
    "all_reduce_ring_segment_",
    "broadcast",
    "gather",
    "reduce",
    "reduce_scatter",
    "all_reduce_hierarchical",
    "all_reduce_hierarchical_",
    "all_reduce_hierarchical_segment",
    "all_reduce_hierarchical_segment_",
    "hierarchical_steps",
    "hierarchical_traffic",
    "ProcessGroup",
    "LinkSpec",
    "ETHERNET_1G",
    "ETHERNET_10G",
    "INFINIBAND_100G",
    "LINK_PRESETS",
    "allgather_time",
    "allreduce_time",
    "point_to_point_time",
    "all_reduce_recursive_halving",
    "all_reduce_tree",
    "best_allreduce_algorithm",
    "rabenseifner_allreduce_time",
    "tree_allreduce_time",
    "ClusterTopology",
    "NVLINK2",
    "PCIE3_X16",
    "best_allreduce_time",
    "crossover_bytes",
    "flat_allreduce_time",
    "hierarchical_allreduce_time",
]
