"""Process-group abstraction over the in-process collectives.

The distributed optimizers talk to a :class:`ProcessGroup` rather than to the
collective functions directly. The group tracks cumulative traffic so
experiments can report measured communication volume per iteration, which is
how the test suite validates the complexity column of Table II.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm import collectives, hierarchical
from repro.comm.topology import ClusterTopology


class ProcessGroup:
    """A group of ``world_size`` simulated workers sharing collectives.

    The group is *lockstep synchronous*: a collective call supplies the
    buffer of every rank at once and returns every rank's result, mirroring
    how synchronous data-parallel training drives NCCL. This keeps the
    numerics of S-SGD / compression algorithms exact without real processes.

    Attributes:
        world_size: number of ranks.
        history: list of :class:`~repro.comm.collectives.CollectiveStats`
            for every collective executed through this group.
    """

    #: Whether callers may use :meth:`all_reduce_` with buffers they want
    #: aggregated where they live. Subclasses that must retransmit the
    #: *original* payloads on failure (CRC-checked resilient groups) set
    #: this False, forcing the aggregators back onto the copying path.
    supports_inplace = True

    def __init__(
        self,
        world_size: int,
        topology: Optional[ClusterTopology] = None,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.history: List[collectives.CollectiveStats] = []
        # Reusable snapshot block for the in-place ring; grows to the
        # largest call ever made and is then allocation-free per step.
        self._ring_scratch = collectives.RingScratch()
        self.topology: Optional[ClusterTopology] = None
        if topology is not None:
            self.set_topology(topology)

    def set_topology(self, topology: Optional[ClusterTopology]) -> None:
        """Route all-reduces over a two-level node topology (or back to flat).

        With a topology set, :meth:`all_reduce` / :meth:`all_reduce_` and
        their segment variants execute the hierarchical schedule of
        :mod:`repro.comm.hierarchical` — bit-identical values, two-level
        traffic accounting. ``None`` restores the flat ring.
        """
        if topology is not None and topology.world_size != self.world_size:
            raise ValueError(
                f"topology world size {topology.world_size} != "
                f"group world size {self.world_size}"
            )
        self.topology = topology

    def _check_world(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(buffers)}"
            )

    def all_reduce(
        self, buffers: Sequence[np.ndarray], average: bool = False
    ) -> List[np.ndarray]:
        """Ring all-reduce (sum, or mean when ``average`` is set).

        With a topology set (see :meth:`set_topology`), runs the two-level
        hierarchical schedule instead — same results bit-for-bit.
        """
        self._check_world(buffers)
        if self.topology is not None:
            results, stats = hierarchical.all_reduce_hierarchical(
                buffers, self.topology
            )
        else:
            results, stats = collectives.all_reduce_ring(buffers)
        self.history.append(stats)
        if average:
            results = [res / self.world_size for res in results]
        return results

    def all_reduce_(
        self, buffers: Sequence[np.ndarray], average: bool = False
    ) -> Sequence[np.ndarray]:
        """In-place ring all-reduce: aggregates **into** ``buffers``.

        Bit-identical to :meth:`all_reduce` (same chunk schedule, same
        accumulation order) but allocation-free: the per-rank buffers are
        reduced where they live and the per-step snapshot reuses the
        group's preallocated scratch block. On return every buffer holds
        the reduced result; the original payloads are destroyed.

        Buffers must be distinct 1-D float64 contiguous arrays — the fused
        arena slabs of :class:`repro.perf.arena.GradientArena`.
        """
        self._check_world(buffers)
        if self.topology is not None:
            stats = hierarchical.all_reduce_hierarchical_(
                buffers, self.topology, scratch=self._ring_scratch
            )
        else:
            stats = collectives.all_reduce_ring_inplace(
                buffers, scratch=self._ring_scratch
            )
        self.history.append(stats)
        if average:
            for buf in buffers:
                buf /= self.world_size
        return buffers

    def all_reduce_segment(
        self,
        buffers: Sequence[np.ndarray],
        seg_start: int,
        total_length: int,
        average: bool = False,
    ) -> List[np.ndarray]:
        """Ring all-reduce of one bucket of a logical fused buffer (copying).

        ``buffers`` are per-rank views of elements
        ``[seg_start, seg_start + len)`` of a logical ``total_length``-element
        buffer; the ring chunk schedule comes from ``total_length``, so
        reducing every bucket reproduces one fused :meth:`all_reduce` over
        the whole buffer bit-exactly (see
        :func:`repro.comm.collectives.all_reduce_ring_segment_`).
        """
        self._check_world(buffers)
        if self.topology is not None:
            results, stats = hierarchical.all_reduce_hierarchical_segment(
                buffers, seg_start, total_length, self.topology
            )
        else:
            results, stats = collectives.all_reduce_ring_segment(
                buffers, seg_start, total_length
            )
        self.history.append(stats)
        if average:
            results = [res / self.world_size for res in results]
        return results

    def all_reduce_segment_(
        self,
        buffers: Sequence[np.ndarray],
        seg_start: int,
        total_length: int,
        average: bool = False,
    ) -> Sequence[np.ndarray]:
        """In-place bucket all-reduce: reduces **into** the segment views.

        The bucketed counterpart of :meth:`all_reduce_`: zero-copy on arena
        bucket views, destroys the per-rank payloads, and is bit-identical
        to the fused in-place call when every bucket of the slab goes
        through it.
        """
        self._check_world(buffers)
        if self.topology is not None:
            stats = hierarchical.all_reduce_hierarchical_segment_(
                buffers, seg_start, total_length, self.topology,
                scratch=self._ring_scratch,
            )
        else:
            stats = collectives.all_reduce_ring_segment_(
                buffers, seg_start, total_length, scratch=self._ring_scratch
            )
        self.history.append(stats)
        if average:
            for buf in buffers:
                buf /= self.world_size
        return buffers

    def all_gather(self, buffers: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Ring all-gather; per-rank payloads may differ in shape."""
        self._check_world(buffers)
        results, stats = collectives.all_gather(buffers)
        self.history.append(stats)
        return results

    def reduce_scatter(self, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Ring reduce-scatter of the flattened buffers."""
        self._check_world(buffers)
        results, stats = collectives.reduce_scatter(buffers)
        self.history.append(stats)
        return results

    def broadcast(
        self, buffers: Sequence[np.ndarray], root: int = 0
    ) -> List[np.ndarray]:
        """Broadcast rank ``root``'s buffer to all ranks."""
        self._check_world(buffers)
        results, stats = collectives.broadcast(buffers, root=root)
        self.history.append(stats)
        return results

    # ------------------------------------------------------------------
    # Traffic introspection
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Total bytes sent by all ranks since construction / last reset."""
        return sum(stats.total_bytes for stats in self.history)

    def bytes_per_rank(self) -> List[int]:
        """Cumulative bytes sent per rank."""
        totals = [0] * self.world_size
        for stats in self.history:
            for rank, nbytes in enumerate(stats.bytes_sent_per_rank):
                totals[rank] += nbytes
        return totals

    def reset_stats(self) -> None:
        """Clear the collective history (e.g. between measured iterations)."""
        self.history.clear()
