"""Process-group abstraction over the in-process collectives.

The distributed optimizers talk to a :class:`ProcessGroup` rather than to the
collective functions directly. The group tracks cumulative traffic so
experiments can report measured communication volume per iteration, which is
how the test suite validates the complexity column of Table II.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.comm import collectives


class ProcessGroup:
    """A group of ``world_size`` simulated workers sharing collectives.

    The group is *lockstep synchronous*: a collective call supplies the
    buffer of every rank at once and returns every rank's result, mirroring
    how synchronous data-parallel training drives NCCL. This keeps the
    numerics of S-SGD / compression algorithms exact without real processes.

    Attributes:
        world_size: number of ranks.
        history: list of :class:`~repro.comm.collectives.CollectiveStats`
            for every collective executed through this group.
    """

    #: Whether callers may use :meth:`all_reduce_` with buffers they want
    #: aggregated where they live. Subclasses that must retransmit the
    #: *original* payloads on failure (CRC-checked resilient groups) set
    #: this False, forcing the aggregators back onto the copying path.
    supports_inplace = True

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.history: List[collectives.CollectiveStats] = []
        # Reusable snapshot block for the in-place ring; grows to the
        # largest call ever made and is then allocation-free per step.
        self._ring_scratch = collectives.RingScratch()

    def _check_world(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(buffers)}"
            )

    def all_reduce(
        self, buffers: Sequence[np.ndarray], average: bool = False
    ) -> List[np.ndarray]:
        """Ring all-reduce (sum, or mean when ``average`` is set)."""
        self._check_world(buffers)
        results, stats = collectives.all_reduce_ring(buffers)
        self.history.append(stats)
        if average:
            results = [res / self.world_size for res in results]
        return results

    def all_reduce_(
        self, buffers: Sequence[np.ndarray], average: bool = False
    ) -> Sequence[np.ndarray]:
        """In-place ring all-reduce: aggregates **into** ``buffers``.

        Bit-identical to :meth:`all_reduce` (same chunk schedule, same
        accumulation order) but allocation-free: the per-rank buffers are
        reduced where they live and the per-step snapshot reuses the
        group's preallocated scratch block. On return every buffer holds
        the reduced result; the original payloads are destroyed.

        Buffers must be distinct 1-D float64 contiguous arrays — the fused
        arena slabs of :class:`repro.perf.arena.GradientArena`.
        """
        self._check_world(buffers)
        stats = collectives.all_reduce_ring_inplace(
            buffers, scratch=self._ring_scratch
        )
        self.history.append(stats)
        if average:
            for buf in buffers:
                buf /= self.world_size
        return buffers

    def all_reduce_segment(
        self,
        buffers: Sequence[np.ndarray],
        seg_start: int,
        total_length: int,
        average: bool = False,
    ) -> List[np.ndarray]:
        """Ring all-reduce of one bucket of a logical fused buffer (copying).

        ``buffers`` are per-rank views of elements
        ``[seg_start, seg_start + len)`` of a logical ``total_length``-element
        buffer; the ring chunk schedule comes from ``total_length``, so
        reducing every bucket reproduces one fused :meth:`all_reduce` over
        the whole buffer bit-exactly (see
        :func:`repro.comm.collectives.all_reduce_ring_segment_`).
        """
        self._check_world(buffers)
        results, stats = collectives.all_reduce_ring_segment(
            buffers, seg_start, total_length
        )
        self.history.append(stats)
        if average:
            results = [res / self.world_size for res in results]
        return results

    def all_reduce_segment_(
        self,
        buffers: Sequence[np.ndarray],
        seg_start: int,
        total_length: int,
        average: bool = False,
    ) -> Sequence[np.ndarray]:
        """In-place bucket all-reduce: reduces **into** the segment views.

        The bucketed counterpart of :meth:`all_reduce_`: zero-copy on arena
        bucket views, destroys the per-rank payloads, and is bit-identical
        to the fused in-place call when every bucket of the slab goes
        through it.
        """
        self._check_world(buffers)
        stats = collectives.all_reduce_ring_segment_(
            buffers, seg_start, total_length, scratch=self._ring_scratch
        )
        self.history.append(stats)
        if average:
            for buf in buffers:
                buf /= self.world_size
        return buffers

    def all_gather(self, buffers: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Ring all-gather; per-rank payloads may differ in shape."""
        self._check_world(buffers)
        results, stats = collectives.all_gather(buffers)
        self.history.append(stats)
        return results

    def reduce_scatter(self, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Ring reduce-scatter of the flattened buffers."""
        self._check_world(buffers)
        results, stats = collectives.reduce_scatter(buffers)
        self.history.append(stats)
        return results

    def broadcast(
        self, buffers: Sequence[np.ndarray], root: int = 0
    ) -> List[np.ndarray]:
        """Broadcast rank ``root``'s buffer to all ranks."""
        self._check_world(buffers)
        results, stats = collectives.broadcast(buffers, root=root)
        self.history.append(stats)
        return results

    # ------------------------------------------------------------------
    # Traffic introspection
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Total bytes sent by all ranks since construction / last reset."""
        return sum(stats.total_bytes for stats in self.history)

    def bytes_per_rank(self) -> List[int]:
        """Cumulative bytes sent per rank."""
        totals = [0] * self.world_size
        for stats in self.history:
            for rank, nbytes in enumerate(stats.bytes_sent_per_rank):
                totals[rank] += nbytes
        return totals

    def reset_stats(self) -> None:
        """Clear the collective history (e.g. between measured iterations)."""
        self.history.clear()
