"""Alpha-beta analytical cost model for collectives.

The performance simulator needs wall-clock estimates for collectives on links
we do not have. We use the standard alpha-beta model (Thakur et al., the
paper's [10]):

- point-to-point: ``t(n) = alpha + n / beta`` for an ``n``-byte message,
- ring all-reduce of ``n`` bytes over ``p`` ranks:
  ``t = 2 (p - 1) alpha + 2 n (p - 1) / (p beta)``,
- ring all-gather where each rank contributes ``n`` bytes:
  ``t = (p - 1) alpha + (p - 1) n / beta``.

``alpha`` is the per-message start-up latency including the collective's
software launch overhead; it is what tensor fusion amortizes. ``beta`` is the
achievable (not nominal) bandwidth of the slowest link on the ring — for the
paper's clusters the cross-node Ethernet/InfiniBand, since 4 GPUs share each
node's NIC.

Calibration: the 10GbE preset is pinned to the micro-measurements the paper
reports for its own testbed (§II-A.3: two 32KB all-reduces take ~2.0ms while
one 64KB all-reduce takes ~1.2ms on 32 ranks; §IV-B: ResNet-50's 97.5MB of
gradients take ~243ms all-reduced tensor-by-tensor and ~169ms fused). The
calibration test in ``tests/test_cost_model.py`` asserts these stay within
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """A network preset.

    Attributes:
        name: human-readable name used in experiment output.
        alpha: per-message start-up latency in seconds (one collective step).
        beta: achievable bandwidth in bytes/second on the bottleneck link.
        nominal_gbps: nominal line rate, for display only.
    """

    name: str
    alpha: float
    beta: float
    nominal_gbps: float

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.beta <= 0:
            raise ValueError(f"beta must be > 0, got {self.beta}")


def point_to_point_time(nbytes: float, link: LinkSpec) -> float:
    """Time to move one ``nbytes`` message over one hop."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0.0
    return link.alpha + nbytes / link.beta


def allreduce_time(nbytes: float, world_size: int, link: LinkSpec) -> float:
    """Ring all-reduce time for an ``nbytes`` buffer over ``world_size`` ranks.

    ``2(p-1)`` start-up latencies (the reduce-scatter and all-gather phases
    each take ``p-1`` pipelined steps) plus the bandwidth term
    ``2 n (p-1) / (p beta)``. This is the Table II "S-SGD communicate"
    complexity, ``2(p-1)/p * N``, turned into seconds.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if world_size == 1 or nbytes == 0:
        return 0.0
    p = world_size
    startup = 2 * (p - 1) * link.alpha
    transfer = 2 * nbytes * (p - 1) / (p * link.beta)
    return startup + transfer


def allgather_time(nbytes_per_rank: float, world_size: int, link: LinkSpec) -> float:
    """Ring all-gather time when each rank contributes ``nbytes_per_rank``.

    Every rank receives ``(p-1) * n`` bytes, so the bandwidth term is linear
    in ``p`` — the Table II complexity ``(p-1) * N/32`` (Sign-SGD) and
    ``(p-1) * 2k`` (Top-k SGD) that makes all-gather-based compression scale
    poorly with worker count.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if nbytes_per_rank < 0:
        raise ValueError(f"nbytes_per_rank must be >= 0, got {nbytes_per_rank}")
    if world_size == 1 or nbytes_per_rank == 0:
        return 0.0
    p = world_size
    startup = (p - 1) * link.alpha
    transfer = (p - 1) * nbytes_per_rank / link.beta
    return startup + transfer


# ---------------------------------------------------------------------------
# Presets (single source of truth; `repro.sim.calibration` re-exports them).
#
# 10GbE calibration compromise, over-determined by the paper's anchors:
# beta = 1.15 GB/s (92% of line rate) reproduces the fused ResNet-50
# all-reduce of §IV-B (~169ms for 97.5MB at 32 ranks); alpha = 13us splits
# the difference between the 64KB-all-reduce anchor (~1.2ms, implying
# ~19us) and the per-tensor-vs-fused gap (243ms vs 169ms over 161 tensors,
# implying ~8us). See docs/simulator.md and tests/test_cost_model.py.
#
# 1GbE keeps similar software overhead with 10x less bandwidth. 100Gb IB:
# low RDMA latency, but 4 GPUs share each node's HCA in a flat ring, so
# achievable per-rank bandwidth sits well below line rate (reproduces the
# paper's Fig. 13 finding that ACP-SGD still wins ~40% on IB).
# ---------------------------------------------------------------------------
ETHERNET_10G = LinkSpec(name="10GbE", alpha=13e-6, beta=1.15e9, nominal_gbps=10.0)
ETHERNET_1G = LinkSpec(name="1GbE", alpha=40e-6, beta=0.115e9, nominal_gbps=1.0)
INFINIBAND_100G = LinkSpec(
    name="100GbIB", alpha=5e-6, beta=4.5e9, nominal_gbps=100.0
)

LINK_PRESETS = {
    spec.name: spec for spec in (ETHERNET_1G, ETHERNET_10G, INFINIBAND_100G)
}
