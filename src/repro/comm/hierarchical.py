"""Two-level (hierarchical) all-reduce over a :class:`ClusterTopology`.

The schedule is the one :func:`repro.comm.topology
.hierarchical_allreduce_time` prices and the task-DAG builders in
:mod:`repro.sched.builders` model: an intra-node ring reduce-scatter
over each node's GPUs (fast link), an inter-node ring all-reduce over
the node leaders — all local shards crossing in parallel but sharing
each node's NIC — and an intra-node all-gather broadcasting the result
back down. Traffic and step accounting follow that two-level route:
``2 (g - 1)`` intra steps plus ``2 (nodes - 1)`` inter steps versus the
flat ring's ``2 (p - 1)``.

**Bit-identity contract.** Values reproduce the *canonical flat-ring
fold*: each element of global chunk ``c`` is accumulated in ascending
rank order starting at rank ``c`` — exactly the association of
:func:`repro.comm.collectives.all_reduce_ring_inplace`. This follows the
precedent of :func:`~repro.comm.collectives.all_reduce_ring_segment_`,
which likewise replays the monolithic association over a bucket while
accounting the schedule actually used: every determinism check in this
repo relies on collective results being invariant to *how* the bytes
moved, so a hierarchical execution that re-associated per level (summing
within nodes first) would silently fork the trajectory of every
compressed method. Keeping the canonical fold makes
``all_reduce_hierarchical_`` bit-identical to the flat ring — monolithic
and bucketed — which the eighth ``scripts/check_determinism.py`` check
enforces for all five bucket-capable methods.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import (
    CollectiveStats,
    RingScratch,
    _chunk_bounds,
)
from repro.comm.topology import ClusterTopology


def hierarchical_steps(topology: ClusterTopology) -> int:
    """Communication rounds of the two-level schedule."""
    return 2 * (topology.gpus_per_node - 1) + 2 * (topology.num_nodes - 1)


def hierarchical_traffic(
    elems: int, topology: ClusterTopology, elem_bytes: int
) -> List[int]:
    """Per-rank bytes of the two-level schedule for ``elems`` elements.

    Intra reduce-scatter and all-gather each move ``(g-1)/g`` of the
    buffer per rank on the fast link; the inter ring moves
    ``2 (nodes-1)/nodes`` of each rank's ``1/g`` shard. The schedule is
    symmetric (every rank drives its own shard through the inter ring),
    so all ranks send the same amount.
    """
    p = topology.world_size
    if p == 1 or elems == 0:
        return [0] * p
    g = topology.gpus_per_node
    nodes = topology.num_nodes
    intra = 2.0 * elems * (g - 1) / g
    inter = 2.0 * (elems / g) * (nodes - 1) / nodes
    per_rank = int(round((intra + inter) * elem_bytes))
    return [per_rank] * p


def _check_buffers(
    buffers: Sequence[np.ndarray], topology: ClusterTopology
) -> int:
    world_size = len(buffers)
    if world_size == 0:
        raise ValueError("collective requires at least one rank buffer")
    if world_size != topology.world_size:
        raise ValueError(
            f"topology world size {topology.world_size} != "
            f"{world_size} rank buffers"
        )
    length = buffers[0].shape[0] if buffers[0].ndim == 1 else -1
    for rank, buf in enumerate(buffers):
        if buf.ndim != 1 or buf.shape[0] != length:
            raise ValueError(
                f"rank {rank} buffer shape {buf.shape} != 1-D length {length}"
            )
        if buf.dtype != np.float64:
            raise ValueError(
                f"hierarchical all-reduce requires float64 buffers, "
                f"rank {rank} has {buf.dtype}"
            )
        if not buf.flags.writeable or not buf.flags.c_contiguous:
            raise ValueError(
                f"rank {rank} buffer must be writable and C-contiguous"
            )
    return length


def _canonical_fold(
    buffers: Sequence[np.ndarray],
    seg_start: int,
    total_length: int,
    scratch: RingScratch,
) -> None:
    """Reduce every element in the canonical flat-ring association.

    Identical arithmetic to ``all_reduce_ring_segment_``: per global
    chunk ``c``, fold ranks ``c, c+1, ...`` (ascending, wrapping) into a
    scratch row, then write the row to every rank.
    """
    world_size = len(buffers)
    seg_len = buffers[0].shape[0]
    bounds = _chunk_bounds(total_length, world_size)
    acc_row = scratch.get(1, max(1, seg_len))[0]
    for chunk, (lo, hi) in enumerate(bounds):
        olo = max(lo, seg_start)
        ohi = min(hi, seg_start + seg_len)
        if olo >= ohi:
            continue
        a, b = olo - seg_start, ohi - seg_start
        acc = acc_row[: b - a]
        np.copyto(acc, buffers[chunk % world_size][a:b])
        for hop in range(1, world_size):
            acc += buffers[(chunk + hop) % world_size][a:b]
        for rank in range(world_size):
            buffers[rank][a:b] = acc


def all_reduce_hierarchical_(
    buffers: Sequence[np.ndarray],
    topology: ClusterTopology,
    scratch: Optional[RingScratch] = None,
) -> CollectiveStats:
    """In-place two-level all-reduce (sum) over ``topology``.

    Requirements match :func:`~repro.comm.collectives
    .all_reduce_ring_inplace`: one 1-D float64 C-contiguous writable
    buffer per rank, ``len(buffers) == topology.world_size``. On return
    every buffer holds the sum; results are bit-identical to the flat
    ring (see module docstring), stats carry the two-level traffic.
    """
    length = _check_buffers(buffers, topology)
    world_size = len(buffers)
    if world_size == 1:
        return CollectiveStats("allreduce_hierarchical", 1, [0], 0)
    scratch = scratch if scratch is not None else RingScratch()
    _canonical_fold(buffers, 0, length, scratch)
    return CollectiveStats(
        algorithm="allreduce_hierarchical",
        world_size=world_size,
        bytes_sent_per_rank=hierarchical_traffic(
            length, topology, buffers[0].dtype.itemsize
        ),
        steps=hierarchical_steps(topology),
    )


def all_reduce_hierarchical_segment_(
    buffers: Sequence[np.ndarray],
    seg_start: int,
    total_length: int,
    topology: ClusterTopology,
    scratch: Optional[RingScratch] = None,
) -> CollectiveStats:
    """In-place two-level all-reduce of one bucket of a fused buffer.

    The bucketed counterpart of :func:`all_reduce_hierarchical_`: chunk
    association comes from ``total_length`` (the monolithic buffer), so
    reducing every bucket of a slab reproduces the fused call — and the
    flat ring — bit-exactly. Traffic is the two-level schedule scaled to
    the segment's element count.
    """
    seg_len = _check_buffers(buffers, topology)
    if not 0 <= seg_start <= seg_start + seg_len <= total_length:
        raise ValueError(
            f"segment [{seg_start}, {seg_start + seg_len}) out of range for "
            f"total length {total_length}"
        )
    world_size = len(buffers)
    if world_size == 1:
        return CollectiveStats("allreduce_hierarchical_segment", 1, [0], 0)
    scratch = scratch if scratch is not None else RingScratch()
    _canonical_fold(buffers, seg_start, total_length, scratch)
    return CollectiveStats(
        algorithm="allreduce_hierarchical_segment",
        world_size=world_size,
        bytes_sent_per_rank=hierarchical_traffic(
            seg_len, topology, buffers[0].dtype.itemsize
        ),
        steps=hierarchical_steps(topology),
    )


def all_reduce_hierarchical(
    buffers: Sequence[np.ndarray],
    topology: ClusterTopology,
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Copying two-level all-reduce; inputs stay intact.

    For callers that may need to retransmit originals (resilient
    groups); returns per-rank result arrays shaped like the inputs.
    """
    shapes = [buf.shape for buf in buffers]
    work = [buf.reshape(-1).astype(np.float64, copy=True) for buf in buffers]
    stats = all_reduce_hierarchical_(work, topology)
    results = [arr.reshape(shape) for arr, shape in zip(work, shapes)]
    return results, stats


def all_reduce_hierarchical_segment(
    buffers: Sequence[np.ndarray],
    seg_start: int,
    total_length: int,
    topology: ClusterTopology,
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Copying variant of :func:`all_reduce_hierarchical_segment_`."""
    work = [buf.reshape(-1).astype(np.float64, copy=True) for buf in buffers]
    stats = all_reduce_hierarchical_segment_(
        work, seg_start, total_length, topology
    )
    return work, stats
