"""Alternative all-reduce algorithms: binomial tree and Rabenseifner.

The ring all-reduce the paper builds on is bandwidth-optimal but pays
``2 (p - 1)`` latency steps; for small messages a binomial tree
(``2 log2 p`` steps) wins, and Rabenseifner's recursive halving-doubling
matches the ring's bandwidth with only ``2 log2 p`` steps (Thakur et al. —
the paper's reference [10]). NCCL switches among such algorithms by message
size; :func:`repro.comm.algorithms.best_allreduce_algorithm` reproduces
that selection analytically.

Like :mod:`repro.comm.collectives`, the implementations genuinely move
data between per-rank buffers so tests can verify both numerics and
traffic.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.comm.collectives import CollectiveStats, _check_inputs
from repro.comm.cost_model import LinkSpec, allreduce_time


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def all_reduce_tree(
    buffers: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Binomial-tree all-reduce: reduce to rank 0, then broadcast.

    ``2 ceil(log2 p)`` communication rounds; each round moves the full
    buffer across half the remaining ranks — latency-optimal, bandwidth
    ``2 n log2(p)/p``-ish per *busiest* rank but ``O(n log p)`` aggregate.
    """
    world_size, shape = _check_inputs(buffers)
    if world_size == 1:
        return [buffers[0].copy()], CollectiveStats("allreduce_tree", 1, [0], 0)
    work = [buf.astype(np.float64, copy=True) for buf in buffers]
    nbytes = buffers[0].nbytes
    sent = [0] * world_size
    rounds = 0

    # Reduce phase: distance doubles each round; sender = rank + distance.
    distance = 1
    while distance < world_size:
        for rank in range(0, world_size, 2 * distance):
            src = rank + distance
            if src < world_size:
                work[rank] = work[rank] + work[src]
                sent[src] += nbytes
        distance *= 2
        rounds += 1

    # Broadcast phase: mirror image.
    distance //= 2
    while distance >= 1:
        for rank in range(0, world_size, 2 * distance):
            dst = rank + distance
            if dst < world_size:
                work[dst] = work[rank].copy()
                sent[rank] += nbytes
        distance //= 2
        rounds += 1

    results = [w.astype(buffers[0].dtype).reshape(shape) for w in work]
    stats = CollectiveStats("allreduce_tree", world_size, sent, rounds)
    return results, stats


def all_reduce_recursive_halving(
    buffers: Sequence[np.ndarray],
) -> Tuple[List[np.ndarray], CollectiveStats]:
    """Rabenseifner all-reduce: recursive halving RS + recursive doubling AG.

    Requires a power-of-two world size (callers fall back to the ring
    otherwise, as MPI implementations do). ``2 log2 p`` rounds with the
    ring's total traffic of ``2 n (p - 1)/p`` per rank.
    """
    world_size, shape = _check_inputs(buffers)
    if world_size == 1:
        return [buffers[0].copy()], CollectiveStats(
            "allreduce_rabenseifner", 1, [0], 0
        )
    if not _is_power_of_two(world_size):
        raise ValueError(
            f"recursive halving needs a power-of-two world, got {world_size}"
        )
    flat = [buf.reshape(-1).astype(np.float64, copy=True) for buf in buffers]
    length = flat[0].shape[0]
    elem_bytes = 8
    sent = [0] * world_size
    rounds = 0

    # Each rank tracks the segment [lo, hi) it is responsible for.
    segments = [(0, length) for _ in range(world_size)]

    # Reduce-scatter by recursive halving.
    distance = world_size // 2
    while distance >= 1:
        snapshot = [f.copy() for f in flat]
        for rank in range(world_size):
            partner = rank ^ distance
            lo, hi = segments[rank]
            mid = (lo + hi) // 2
            if rank < partner:
                keep = (lo, mid)
                give = (mid, hi)
            else:
                keep = (mid, hi)
                give = (lo, mid)
            # Send the half we give up; accumulate the half we keep.
            sent[rank] += (give[1] - give[0]) * elem_bytes
            flat[rank][keep[0]:keep[1]] += snapshot[partner][keep[0]:keep[1]]
            segments[rank] = keep
        distance //= 2
        rounds += 1

    # All-gather by recursive doubling (reverse the halving).
    distance = 1
    while distance < world_size:
        snapshot = [f.copy() for f in flat]
        seg_snapshot = list(segments)
        for rank in range(world_size):
            partner = rank ^ distance
            p_lo, p_hi = seg_snapshot[partner]
            sent[rank] += (segments[rank][1] - segments[rank][0]) * elem_bytes
            flat[rank][p_lo:p_hi] = snapshot[partner][p_lo:p_hi]
            lo, hi = segments[rank]
            segments[rank] = (min(lo, p_lo), max(hi, p_hi))
        distance *= 2
        rounds += 1

    results = [f.astype(buffers[0].dtype).reshape(shape) for f in flat]
    stats = CollectiveStats("allreduce_rabenseifner", world_size, sent, rounds)
    return results, stats


# ---------------------------------------------------------------------------
# Cost models + algorithm selection.
# ---------------------------------------------------------------------------

def tree_allreduce_time(nbytes: float, world_size: int, link: LinkSpec) -> float:
    """Binomial tree: ``2 log2(p)`` sequential full-buffer hops."""
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if world_size == 1 or nbytes == 0:
        return 0.0
    rounds = 2 * math.ceil(math.log2(world_size))
    return rounds * (link.alpha + nbytes / link.beta)


def rabenseifner_allreduce_time(
    nbytes: float, world_size: int, link: LinkSpec
) -> float:
    """Recursive halving-doubling: ``2 log2 p`` startups, ring bandwidth."""
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if world_size == 1 or nbytes == 0:
        return 0.0
    rounds = 2 * math.ceil(math.log2(world_size))
    startup = rounds * link.alpha
    transfer = 2.0 * nbytes * (world_size - 1) / (world_size * link.beta)
    return startup + transfer


def best_allreduce_algorithm(
    nbytes: float, world_size: int, link: LinkSpec
) -> Tuple[str, float]:
    """Pick the fastest of ring / tree / Rabenseifner for a message size.

    Mirrors NCCL's size-based algorithm switching: Rabenseifner (when the
    world is a power of two) dominates the ring at every size in the
    alpha-beta model; the tree can win only for tiny messages on huge
    worlds where even ``2 log p`` bandwidth terms are negligible.
    """
    candidates = {
        "ring": allreduce_time(nbytes, world_size, link),
        "tree": tree_allreduce_time(nbytes, world_size, link),
    }
    if _is_power_of_two(world_size):
        candidates["rabenseifner"] = rabenseifner_allreduce_time(
            nbytes, world_size, link
        )
    best = min(candidates, key=candidates.get)
    return best, candidates[best]
