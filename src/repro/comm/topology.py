"""Hierarchical cluster topology and two-level collective cost models.

The paper's testbed is 8 nodes x 4 GPUs: GPUs share PCIe 3.0 x16 within a
node and one 10GbE NIC across nodes. The flat-ring alpha-beta model in
:mod:`repro.comm.cost_model` absorbs that into an effective (alpha, beta);
this module models the hierarchy explicitly, enabling the
flat-vs-hierarchical all-reduce ablation (``benchmarks/test_ablation_*``):

hierarchical all-reduce =
  intra-node reduce-scatter (fast link)
  -> inter-node ring all-reduce of 1/g of the buffer per leader (slow link)
  -> intra-node all-gather (fast link)

which trades a little intra-node traffic for ``g`` times fewer slow-link
steps — a win for start-up-bound (small/compressed) messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.cost_model import ETHERNET_10G, LinkSpec, allreduce_time

# Intra-node link presets.
PCIE3_X16 = LinkSpec(name="PCIe3x16", alpha=4e-6, beta=12.0e9, nominal_gbps=128.0)
NVLINK2 = LinkSpec(name="NVLink2", alpha=3e-6, beta=40.0e9, nominal_gbps=400.0)


@dataclass(frozen=True)
class ClusterTopology:
    """A two-level cluster: nodes of GPUs.

    Attributes:
        num_nodes: node count.
        gpus_per_node: GPUs per node (sharing the node's NIC).
        intra_link: GPU-to-GPU link within a node.
        inter_link: node-to-node link.
    """

    num_nodes: int
    gpus_per_node: int
    intra_link: LinkSpec = PCIE3_X16
    inter_link: LinkSpec = ETHERNET_10G

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node


def _ring_phase_time(nbytes: float, members: int, link: LinkSpec) -> float:
    """One reduce-scatter or all-gather phase over ``members`` ranks."""
    if members <= 1 or nbytes <= 0:
        return 0.0
    steps = members - 1
    return steps * link.alpha + nbytes * (members - 1) / (members * link.beta)


def flat_allreduce_time(nbytes: float, topology: ClusterTopology) -> float:
    """Single flat ring over all GPUs; bottlenecked by the inter-node link.

    Start-up is paid on every one of the ``2 (p - 1)`` steps; bandwidth is
    limited by the slow link each inter-node hop crosses.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    return allreduce_time(nbytes, topology.world_size, topology.inter_link)


def hierarchical_allreduce_time(nbytes: float, topology: ClusterTopology) -> float:
    """Two-level all-reduce: intra RS -> inter all-reduce -> intra AG.

    After the intra-node reduce-scatter each of the ``g`` local ranks owns
    ``n/g`` reduced bytes; all ``g`` shards cross the inter-node ring in
    parallel but share the node NIC, so the inter phase carries ``n`` bytes
    per NIC in total — same bandwidth term as the flat ring, but only
    ``2 (nodes - 1)`` slow-link start-ups instead of ``2 (p - 1)``.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0 or topology.world_size == 1:
        return 0.0
    g = topology.gpus_per_node
    intra_rs = _ring_phase_time(nbytes, g, topology.intra_link)
    inter = allreduce_time(nbytes, topology.num_nodes, topology.inter_link)
    intra_ag = _ring_phase_time(nbytes, g, topology.intra_link)
    return intra_rs + inter + intra_ag


def best_allreduce_time(nbytes: float, topology: ClusterTopology) -> float:
    """The faster of flat and hierarchical for this message size (what an
    NCCL-like autotuner would pick)."""
    return min(
        flat_allreduce_time(nbytes, topology),
        hierarchical_allreduce_time(nbytes, topology),
    )


def crossover_bytes(
    topology: ClusterTopology, low: float = 1.0, high: float = 1e9
) -> float:
    """Approximate message size where flat and hierarchical tie.

    Hierarchical wins below (start-up bound), flat at/above (its bandwidth
    term lacks the intra-node detour). Returns ``high`` if hierarchical
    always wins on the probed range, ``low`` if it never does.
    """
    def diff(nbytes: float) -> float:
        return hierarchical_allreduce_time(nbytes, topology) - flat_allreduce_time(
            nbytes, topology
        )

    if diff(low) >= 0:
        return low
    if diff(high) <= 0:
        return high
    for _ in range(64):
        mid = (low * high) ** 0.5
        if diff(mid) <= 0:
            low = mid
        else:
            high = mid
    return (low * high) ** 0.5
