"""Legacy engine facade over the :mod:`repro.sched` scheduling core.

Historically this module owned the whole discrete-event loop, hard-coded
to three streams. The loop now lives in
:class:`repro.sched.engine.EventLoop` over arbitrary named resources and
pluggable schedulers; this module keeps the original API — ``Task``,
``TaskRecord``, ``Engine``, and the three canonical stream names — as a
thin adapter so every existing caller and trace stays bit-identical
(``scripts/golden_trace.py`` enforces this against records captured from
the pre-refactor engine).

Semantics, unchanged: two GPU streams (``gpu_main`` and ``gpu_side``)
interfere — while both are busy with contending work, each progresses at
``contention_rate`` of full speed (the paper's compute resource
competition between back-propagation and Power-SGD*'s hook compression,
§III-C / Fig. 4(b)). The ``nic`` resource is independent. Streams are
strict FIFO unless given the ``"priority"`` discipline: a stream's head
task may wait on dependencies, and tasks behind it cannot overtake —
matching CUDA stream and NCCL queue semantics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.sched.engine import EventLoop
from repro.sched.graph import Task, TaskGraph, TaskRecord
from repro.sched.resources import ResourceModel
from repro.sched.scheduler import DISCIPLINES

GPU_MAIN = "gpu_main"
GPU_SIDE = "gpu_side"
NIC = "nic"

_CONTENDING = (GPU_MAIN, GPU_SIDE)

__all__ = [
    "GPU_MAIN",
    "GPU_SIDE",
    "NIC",
    "Task",
    "TaskGraph",
    "TaskRecord",
    "Engine",
]


class Engine:
    """Run a task graph to completion and return per-task records.

    Thin adapter: validates the legacy configuration surface, then
    delegates to one :class:`~repro.sched.engine.EventLoop` with the
    two-GPU contention pair.

    Args:
        contention_rate: GPU-stream mutual slowdown (see module docstring).
        disciplines: per-stream scheduling discipline — ``"fifo"`` (default:
            strict submission order with head-of-line blocking, CUDA/NCCL
            semantics) or ``"priority"`` (among dependency-ready tasks, the
            highest ``Task.priority`` runs first; a blocked head does not
            stall the stream — a priority communication scheduler).
    """

    def __init__(
        self,
        contention_rate: float = 0.40,
        disciplines: Optional[Dict[str, str]] = None,
    ):
        if not 0.0 < contention_rate <= 1.0:
            raise ValueError(
                f"contention_rate must be in (0, 1], got {contention_rate}"
            )
        self.contention_rate = contention_rate
        self.disciplines = dict(disciplines or {})
        for stream, discipline in self.disciplines.items():
            if discipline not in DISCIPLINES:
                raise ValueError(
                    f"unknown discipline {discipline!r} for stream {stream!r}"
                )
        self._loop = EventLoop(
            resources=ResourceModel.gpu_contention(contention_rate),
            disciplines=self.disciplines,
        )

    def run(self, tasks: Sequence[Task]) -> Dict[str, TaskRecord]:
        """Simulate ``tasks``; returns records keyed by task_id.

        Raises:
            ValueError: duplicate ids, unknown dependencies, or a deadlock
                (circular dependencies / FIFO head blocked forever).
        """
        return self._loop.run(tasks)
