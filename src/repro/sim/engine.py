"""Processor-sharing discrete-event engine.

Simulates FIFO task streams over named resources. Two GPU streams
(``gpu_main`` and ``gpu_side``) interfere: while both are busy, each
progresses at ``contention_rate`` of full speed (the paper's compute
resource competition between back-propagation and Power-SGD*'s hook
compression, §III-C / Fig. 4(b)). The ``nic`` resource is independent.

Streams are strict FIFO: a stream's head task may wait on dependencies, and
tasks behind it cannot overtake — matching CUDA stream and NCCL queue
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

GPU_MAIN = "gpu_main"
GPU_SIDE = "gpu_side"
NIC = "nic"

_CONTENDING = (GPU_MAIN, GPU_SIDE)


@dataclass
class Task:
    """One unit of simulated work.

    Attributes:
        task_id: unique name.
        stream: resource this task runs on (``gpu_main``/``gpu_side``/``nic``).
        work: seconds of work at full rate (>= 0).
        deps: task_ids that must complete before this task may start.
        tag: breakdown category — ``"forward"``, ``"backward"``,
            ``"compression"``, ``"comm"`` or ``"other"``.
        contends: whether this task competes for GPU execution resources.
            FLOP-heavy kernels (BP layers, compression GEMMs) contend;
            launch-latency-bound work (tall-skinny QR, which barely occupies
            the SMs) runs concurrently without mutual slowdown. Contention
            between the two GPU streams applies only when *both* current
            tasks contend.
        priority: scheduling priority, used only on streams configured with
            the ``"priority"`` discipline (higher runs first among ready
            tasks). Models tensor-priority communication schedulers
            (ByteScheduler / the paper's reference [3]).
        start_after: wall-clock time before which this task may not start,
            even if its dependencies are done. Models externally imposed
            delays — a rank that is down until recovery, a retransmit
            timeout — without inflating the task's own work.
    """

    task_id: str
    stream: str
    work: float
    deps: Tuple[str, ...] = ()
    tag: str = "other"
    contends: bool = True
    priority: int = 0
    start_after: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"task {self.task_id!r} has negative work {self.work}")
        if self.start_after < 0:
            raise ValueError(
                f"task {self.task_id!r} has negative start_after {self.start_after}"
            )


@dataclass
class TaskRecord:
    """Execution record of one task."""

    task: Task
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Engine:
    """Run a task graph to completion and return per-task records.

    Args:
        contention_rate: GPU-stream mutual slowdown (see module docstring).
        disciplines: per-stream scheduling discipline — ``"fifo"`` (default:
            strict submission order with head-of-line blocking, CUDA/NCCL
            semantics) or ``"priority"`` (among dependency-ready tasks, the
            highest ``Task.priority`` runs first; a blocked head does not
            stall the stream — a priority communication scheduler).
    """

    def __init__(
        self,
        contention_rate: float = 0.40,
        disciplines: Optional[Dict[str, str]] = None,
    ):
        if not 0.0 < contention_rate <= 1.0:
            raise ValueError(
                f"contention_rate must be in (0, 1], got {contention_rate}"
            )
        self.contention_rate = contention_rate
        self.disciplines = dict(disciplines or {})
        for stream, discipline in self.disciplines.items():
            if discipline not in ("fifo", "priority"):
                raise ValueError(
                    f"unknown discipline {discipline!r} for stream {stream!r}"
                )

    def run(self, tasks: Sequence[Task]) -> Dict[str, TaskRecord]:
        """Simulate ``tasks``; returns records keyed by task_id.

        Raises:
            ValueError: duplicate ids, unknown dependencies, or a deadlock
                (circular dependencies / FIFO head blocked forever).
        """
        by_id: Dict[str, Task] = {}
        for task in tasks:
            if task.task_id in by_id:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            by_id[task.task_id] = task
        for task in tasks:
            for dep in task.deps:
                if dep not in by_id:
                    raise ValueError(
                        f"task {task.task_id!r} depends on unknown {dep!r}"
                    )

        queues: Dict[str, List[Task]] = {}
        for task in tasks:  # submission order
            queues.setdefault(task.stream, []).append(task)
        heads: Dict[str, int] = {stream: 0 for stream in queues}
        current: Dict[str, Optional[Task]] = {stream: None for stream in queues}

        remaining: Dict[str, float] = {t.task_id: t.work for t in tasks}
        started: Dict[str, float] = {}
        done: Dict[str, float] = {}
        now = 0.0

        def ready(task: Task) -> bool:
            return (
                all(dep in done for dep in task.deps)
                and now >= task.start_after
            )

        def select(stream: str) -> Optional[Task]:
            """The task this stream would run now (non-preemptive)."""
            if current[stream] is not None:
                return current[stream]
            queue = queues[stream]
            if self.disciplines.get(stream, "fifo") == "fifo":
                # Skip completed prefix, then strict head-of-line.
                idx = heads[stream]
                while idx < len(queue) and queue[idx].task_id in done:
                    idx += 1
                heads[stream] = idx
                if idx < len(queue) and ready(queue[idx]):
                    return queue[idx]
                return None
            # Priority: any dependency-ready, not-done task; highest
            # priority first, submission order breaking ties.
            best: Optional[Task] = None
            for candidate in queue:
                if candidate.task_id in done:
                    continue
                if not ready(candidate):
                    continue
                if best is None or candidate.priority > best.priority:
                    best = candidate
            return best

        total = len(tasks)
        while len(done) < total:
            # Complete zero-work selectable tasks immediately (may cascade).
            progressed = True
            while progressed:
                progressed = False
                for stream in queues:
                    task = select(stream)
                    if task is not None and remaining[task.task_id] == 0.0:
                        started.setdefault(task.task_id, now)
                        done[task.task_id] = now
                        current[stream] = None
                        progressed = True
            if len(done) == total:
                break

            # Determine active tasks and rates.
            active: Dict[str, Task] = {}
            for stream in queues:
                task = select(stream)
                if task is not None:
                    active[stream] = task
                    current[stream] = task
            if not active:
                # Everything runnable is time-gated: jump the clock to the
                # earliest start_after among dependency-ready tasks.
                gate_times = [
                    t.start_after
                    for t in tasks
                    if t.task_id not in done
                    and all(dep in done for dep in t.deps)
                    and t.start_after > now
                ]
                if gate_times:
                    now = min(gate_times)
                    continue
                pending = [t.task_id for t in tasks if t.task_id not in done]
                raise ValueError(f"deadlock: no runnable task among {pending}")

            both_gpus = all(stream in active for stream in _CONTENDING)
            contending = both_gpus and all(
                active[stream].contends for stream in _CONTENDING
            )
            rates: Dict[str, float] = {}
            for stream in active:
                if contending and stream in _CONTENDING:
                    rates[stream] = self.contention_rate
                else:
                    rates[stream] = 1.0

            # Advance to the earliest completion, but never past a pending
            # task's start_after gate (an idle stream must be able to pick
            # it up the moment it becomes eligible).
            horizon = min(
                remaining[task.task_id] / rates[stream]
                for stream, task in active.items()
            )
            gates = [
                task.start_after - now
                for task in tasks
                if task.task_id not in done and task.start_after > now
            ]
            if gates:
                horizon = min(horizon, min(gates))
            for stream, task in active.items():
                started.setdefault(task.task_id, now)
                remaining[task.task_id] -= rates[stream] * horizon
            now += horizon
            for stream, task in list(active.items()):
                if remaining[task.task_id] <= 1e-15:
                    remaining[task.task_id] = 0.0
                    done[task.task_id] = now
                    current[stream] = None

        return {
            task.task_id: TaskRecord(task, started[task.task_id], done[task.task_id])
            for task in tasks
        }
