"""Analytical GPU memory model.

Reproduces the paper's §III-B observation that "Sign-SGD runs out of
memory due to its increased memory requirement" on BERT-Large (11GB RTX
2080 Ti): a framework-level majority vote holds every worker's sign tensor
at once — ``p x N`` int8 bytes, ~10.7GB at 32 workers x 336M parameters —
on top of weights/gradients/momentum/EF, while the same configuration fits
comfortably for BERT-Base (3.5GB gathered) and the ResNets.

The estimates are deliberately simple (fp32 everywhere, activation memory
from layer output sizes with a re-use factor) but capture the ordering and
the OOM cliff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.compression.reshaping import matrix_view_shape, should_compress
from repro.models.spec import FP32_BYTES, ModelSpec

GiB = 1024.0**3
RTX2080TI_MEMORY_BYTES = 11.0 * GiB


@dataclass(frozen=True)
class MemoryEstimate:
    """Peak per-GPU memory of one training iteration (bytes)."""

    weights: float
    gradients: float
    optimizer_state: float
    activations: float
    compression_buffers: float
    communication_buffers: float

    @property
    def total(self) -> float:
        return (
            self.weights + self.gradients + self.optimizer_state
            + self.activations + self.compression_buffers
            + self.communication_buffers
        )

    def fits(self, capacity_bytes: float = RTX2080TI_MEMORY_BYTES) -> bool:
        """Whether the estimate fits a card of ``capacity_bytes``."""
        return self.total <= capacity_bytes


def _activation_bytes(model: ModelSpec, batch_size: int) -> float:
    """Activation footprint: per-layer output elements x batch x fp32.

    A 1.3x factor covers the intermediates frameworks also retain (pre-
    activation values, attention probabilities, workspace).
    """
    return 1.3 * model.activation_elements(batch_size) * FP32_BYTES


def estimate_memory(
    method: str,
    model: ModelSpec,
    batch_size: int,
    world_size: int,
    rank: int = 4,
    topk_ratio: float = 0.001,
) -> MemoryEstimate:
    """Peak per-GPU memory for one method/model/cluster configuration."""
    if batch_size < 1 or world_size < 1:
        raise ValueError("batch_size and world_size must be >= 1")
    n_bytes = float(model.parameter_bytes)
    n_elems = float(model.num_parameters)
    weights = n_bytes
    gradients = n_bytes
    optimizer_state = n_bytes  # SGD momentum
    activations = _activation_bytes(model, batch_size)

    compression = 0.0
    communication = 0.0
    if method == "ssgd":
        communication = n_bytes  # fused flat buffer
    elif method == "signsgd":
        # EF residual + int8 sign tensors: one local plus the all-gathered
        # copy from every worker (a framework-level majority vote holds
        # p x N int8 at once — the BERT-Large OOM), + the fp32 vote
        # accumulator.
        compression = n_bytes  # error feedback
        int8_signs = n_elems
        communication = int8_signs + world_size * int8_signs + n_bytes
    elif method == "topk":
        k = max(1.0, round(n_elems * topk_ratio))
        compression = n_bytes  # error feedback
        communication = world_size * 2.0 * k * FP32_BYTES
    elif method in ("powersgd", "powersgd_star", "acpsgd"):
        compression = n_bytes  # error feedback
        factors = 0.0
        for tensor in model.tensors():
            if should_compress(tensor.shape):
                n, m = matrix_view_shape(tensor.shape)
                r = min(rank, n, m)
                if n * m > (n + m) * r:
                    factors += (n + m) * r * FP32_BYTES
        if method == "acpsgd":
            # One factor at a time travels, but P, Q and E are all held.
            communication = factors / 2.0
            compression += factors
        else:
            communication = factors
            compression += factors
    else:
        raise ValueError(f"unknown method {method!r}")

    return MemoryEstimate(
        weights=weights,
        gradients=gradients,
        optimizer_state=optimizer_state,
        activations=activations,
        compression_buffers=compression,
        communication_buffers=communication,
    )


def memory_report(
    model: ModelSpec, batch_size: int, world_size: int, rank: int = 4
) -> Dict[str, MemoryEstimate]:
    """Estimates for every method on one configuration."""
    return {
        method: estimate_memory(method, model, batch_size, world_size, rank)
        for method in ("ssgd", "signsgd", "topk", "powersgd", "acpsgd")
    }
