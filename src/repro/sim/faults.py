"""Straggler / failure timing model for the performance simulator.

The convergence-side fault machinery (:mod:`repro.faults`) answers "does
training survive?"; this module answers the paper-adjacent *performance*
question: what does an imperfect cluster do to each method's iteration
time? Compression methods differ sharply here — ACP-SGD's single small
all-reduce retransmits cheaply, while S-SGD's large gradient volume pays
``drop_rate`` over far more packets, and every synchronous method is gated
by its slowest rank.

The model perturbs one iteration's task graph (from
:mod:`repro.sim.strategies`) per sample:

- **stragglers** — each rank independently straggles with probability
  ``straggler_prob``; a straggler's compute runs ``1 + sigma * |z|`` times
  slower (``z ~ N(0,1)``). Lockstep synchrony means the iteration is gated
  by the *slowest* rank, so all compute tasks are scaled by the max factor;
- **transfer drops** — each communication task suffers a geometric number
  of retransmissions at rate ``drop_rate``; every retransmission costs a
  detection timeout plus a resend of the transfer;
- **rank downtime** — a failed rank back after ``rank_down_s`` delays every
  collective's start (compute proceeds locally), exercising the engine's
  ``Task.start_after`` gate.

All draws come from one seeded generator, so a trace is reproducible
bit-for-bit. Follows the :mod:`repro.sim.variance` idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.spec import ModelSpec
from repro.sched import TaskGraph
from repro.sim.calibration import SimConfig
from repro.sim.engine import Engine, Task
from repro.sim.results import breakdown_from_records
from repro.sim.strategies import ClusterSpec, SystemConfig, build_iteration_tasks

_COMPUTE_TAGS = ("forward", "backward", "compression")
_MAX_RETRANSMITS = 10


@dataclass(frozen=True)
class FaultModel:
    """Stochastic cluster imperfections applied to an iteration's tasks.

    Attributes:
        straggler_prob: per-rank per-iteration straggling probability.
        straggler_sigma: straggler severity — slowdown ``1 + sigma * |z|``
          with ``z ~ N(0,1)`` (3.0 models the "3-sigma straggler" question).
        drop_rate: per-transfer probability that a communication task needs
          a retransmission (sampled geometrically, capped at 10).
        retry_timeout_s: detection timeout paid per retransmission, on top
          of resending the transfer itself.
        rank_down_s: seconds from iteration start during which a rank is
          down; collectives cannot start before it recovers.
        worker_crash_prob: per-rank per-iteration probability that the
          rank's worker *process* dies mid-step and is respawned in
          place (the supervisor's ``"restart"`` rung): the crashed pass
          re-runs after the respawn, so — under lockstep synchrony —
          the iteration's compute doubles and every collective waits
          out the respawn.
        worker_respawn_s: cost of one child respawn (process start +
          sampling-stream replay), paid per crash before collectives
          may begin.
    """

    straggler_prob: float = 0.0
    straggler_sigma: float = 3.0
    drop_rate: float = 0.0
    retry_timeout_s: float = 0.01
    rank_down_s: float = 0.0
    worker_crash_prob: float = 0.0
    worker_respawn_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError(
                f"straggler_prob must be in [0, 1], got {self.straggler_prob}"
            )
        if self.straggler_sigma < 0:
            raise ValueError(
                f"straggler_sigma must be >= 0, got {self.straggler_sigma}"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.retry_timeout_s < 0:
            raise ValueError(
                f"retry_timeout_s must be >= 0, got {self.retry_timeout_s}"
            )
        if self.rank_down_s < 0:
            raise ValueError(f"rank_down_s must be >= 0, got {self.rank_down_s}")
        if not 0.0 <= self.worker_crash_prob <= 1.0:
            raise ValueError(
                f"worker_crash_prob must be in [0, 1], "
                f"got {self.worker_crash_prob}"
            )
        if self.worker_respawn_s < 0:
            raise ValueError(
                f"worker_respawn_s must be >= 0, got {self.worker_respawn_s}"
            )

    def sample_compute_slowdown(
        self, world_size: int, rng: np.random.Generator
    ) -> float:
        """The iteration's compute slowdown: the slowest rank gates everyone."""
        straggling = rng.random(world_size) < self.straggler_prob
        if not straggling.any():
            return 1.0
        severities = 1.0 + self.straggler_sigma * np.abs(
            rng.normal(size=int(straggling.sum()))
        )
        return float(severities.max())

    def sample_worker_crashes(
        self, world_size: int, rng: np.random.Generator
    ) -> int:
        """How many worker processes die (and respawn) this iteration."""
        if self.worker_crash_prob <= 0.0:
            return 0
        return int((rng.random(world_size) < self.worker_crash_prob).sum())

    def sample_retransmits(self, rng: np.random.Generator) -> int:
        """Geometric retransmission count for one transfer (capped)."""
        retries = 0
        while retries < _MAX_RETRANSMITS and rng.random() < self.drop_rate:
            retries += 1
        return retries

    def perturb_graph(
        self, graph: TaskGraph, world_size: int, rng: np.random.Generator
    ) -> TaskGraph:
        """One faulty replay of ``graph``: scaled compute, retried comm.

        The per-task draws happen in submission order (``map_tasks``
        preserves it), so seeded traces are stable across the list and
        graph APIs.
        """
        slowdown = self.sample_compute_slowdown(world_size, rng)
        # Worker-crash draws are gated on the knob (not just zero-prob
        # draws) so seeded traces from crash-free models replay exactly
        # as they did before the knob existed.
        crashes = self.sample_worker_crashes(world_size, rng)
        if crashes:
            # The supervised restart rung: the dead rank's pass re-runs
            # after the respawn, and synchrony gates everyone on it.
            slowdown *= 2.0
        respawn_delay = crashes * self.worker_respawn_s

        def perturb_one(task: Task) -> Task:
            work = task.work
            start_after = task.start_after
            if task.tag in _COMPUTE_TAGS:
                work *= slowdown
            elif task.tag == "comm":
                retries = self.sample_retransmits(rng)
                if retries:
                    work += retries * (task.work + self.retry_timeout_s)
                if self.rank_down_s > 0.0 or respawn_delay > 0.0:
                    start_after = max(
                        start_after, self.rank_down_s, respawn_delay
                    )
            return Task(task.task_id, task.stream, work, task.deps,
                        tag=task.tag, contends=task.contends,
                        priority=task.priority, start_after=start_after)

        return graph.map_tasks(perturb_one)

    def perturb(
        self, tasks: Sequence[Task], world_size: int, rng: np.random.Generator
    ) -> List[Task]:
        """Task-list view of :meth:`perturb_graph` (legacy API)."""
        graph = tasks if isinstance(tasks, TaskGraph) else TaskGraph(tasks)
        return list(self.perturb_graph(graph, world_size, rng).tasks)


@dataclass(frozen=True)
class FaultTrace:
    """Iteration times (seconds) of one method under a fault model."""

    method: str
    clean_time: float
    samples: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def p95(self) -> float:
        return float(np.percentile(self.samples, 95))

    @property
    def worst(self) -> float:
        return float(np.max(self.samples))

    @property
    def slowdown(self) -> float:
        """Mean faulty iteration time relative to the fault-free iteration."""
        return self.mean / self.clean_time if self.clean_time > 0 else float("inf")

    def render(self) -> str:
        return (
            f"{self.method:>14}  clean {self.clean_time * 1e3:8.1f} ms  "
            f"mean {self.mean * 1e3:8.1f} ms  p95 {self.p95 * 1e3:8.1f} ms  "
            f"worst {self.worst * 1e3:8.1f} ms  slowdown {self.slowdown:5.2f}x"
        )


def simulate_fault_trace(
    method: str,
    model: ModelSpec,
    fault_model: FaultModel,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    iterations: int = 50,
    seed: int = 0,
) -> FaultTrace:
    """Replay one iteration ``iterations`` times under ``fault_model``.

    ACP-SGD alternates P/Q parities across iterations like real training.
    The clean baseline is the same parity sequence with no faults, so
    ``slowdown`` isolates the fault cost from parity asymmetry.
    """
    if iterations < 1:
        raise ValueError(f"need >= 1 iteration, got {iterations}")
    cluster = cluster if cluster is not None else ClusterSpec()
    sim = sim if sim is not None else SimConfig()
    rng = np.random.default_rng(seed)
    engine = Engine(contention_rate=sim.contention_rate)
    samples: List[float] = []
    clean_times: List[float] = []
    for idx in range(iterations):
        tasks = build_iteration_tasks(
            method, model, cluster, system, sim, batch_size, rank, topk_ratio,
            acp_parity_p=(idx % 2 == 0),
        )
        if idx < 2:  # both parities cover the clean baseline
            clean_times.append(
                breakdown_from_records(engine.run(tasks)).total
            )
        perturbed = fault_model.perturb(tasks, cluster.world_size, rng)
        samples.append(breakdown_from_records(engine.run(perturbed)).total)
    return FaultTrace(
        method=method,
        clean_time=float(np.mean(clean_times)),
        samples=tuple(samples),
    )


def compare_methods_under_faults(
    methods: Sequence[str],
    model: ModelSpec,
    fault_model: FaultModel,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    iterations: int = 50,
    seed: int = 0,
) -> Dict[str, FaultTrace]:
    """Fault traces for several methods under identical fault draws.

    Each method gets its own generator seeded identically, so the rank-level
    fault pattern (who straggles when) is as comparable as the differing
    task-graph shapes allow.
    """
    return {
        method: simulate_fault_trace(
            method, model, fault_model, cluster, system, sim, batch_size,
            rank, topk_ratio, iterations, seed,
        )
        for method in methods
    }


def render_fault_comparison(traces: Dict[str, FaultTrace]) -> str:
    """Aligned text table of per-method fault traces."""
    return "\n".join(trace.render() for trace in traces.values())


# ----------------------------------------------------------------------
# Elastic churn timeline (world size changes mid-run)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnEvent:
    """The world size changes to ``world_size`` at ``iteration``."""

    iteration: int
    world_size: int

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise ValueError(
                f"churn iterations are 1-based, got {self.iteration}"
            )
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")


@dataclass(frozen=True)
class ElasticPhase:
    """A run of iterations at one world size within a churn timeline."""

    start_iteration: int
    iterations: int
    world_size: int
    iteration_time_s: float
    admission_cost_s: float  # one-time sync paid entering this phase

    @property
    def total_time_s(self) -> float:
        return self.admission_cost_s + self.iterations * self.iteration_time_s


@dataclass(frozen=True)
class ElasticTrace:
    """One method's iteration-time timeline under membership churn."""

    method: str
    phases: Tuple[ElasticPhase, ...]

    @property
    def total_time_s(self) -> float:
        return sum(phase.total_time_s for phase in self.phases)

    @property
    def admission_overhead_s(self) -> float:
        return sum(phase.admission_cost_s for phase in self.phases)

    def render(self) -> str:
        lines = [f"{self.method}: {self.total_time_s:.3f} s total "
                 f"({self.admission_overhead_s * 1e3:.1f} ms admissions)"]
        for phase in self.phases:
            admit = (f"  +{phase.admission_cost_s * 1e3:.1f} ms admission"
                     if phase.admission_cost_s else "")
            lines.append(
                f"  iter {phase.start_iteration:>4}..."
                f"{phase.start_iteration + phase.iterations - 1:<4} "
                f"p={phase.world_size:<3} "
                f"{phase.iteration_time_s * 1e3:8.1f} ms/iter{admit}"
            )
        return "\n".join(lines)


def admission_sync_cost(model: ModelSpec, cluster: ClusterSpec) -> float:
    """Simulated cost of one elastic admission's state synchronization.

    The joiner receives the full model plus the optimizer's momentum state
    (another full-model-sized buffer) from the donor survivor — two
    point-to-point model transfers over the bottleneck link, matching what
    :class:`~repro.elastic.MembershipController` broadcasts on admission.
    """
    from repro.comm.cost_model import point_to_point_time

    return point_to_point_time(2 * model.parameter_bytes, cluster.link)


def simulate_elastic_trace(
    method: str,
    model: ModelSpec,
    schedule: Sequence[ChurnEvent],
    iterations: int,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
) -> ElasticTrace:
    """Timeline of per-iteration times across a churn ``schedule``.

    The run starts at ``cluster.world_size``; each :class:`ChurnEvent`
    re-sizes the world from its iteration on. Phases at a larger world
    size than their predecessor pay :func:`admission_sync_cost` once per
    added rank. ACP-SGD's parity asymmetry is averaged out by costing both
    the P- and Q-step graphs per phase.
    """
    import dataclasses

    if iterations < 1:
        raise ValueError(f"need >= 1 iteration, got {iterations}")
    cluster = cluster if cluster is not None else ClusterSpec()
    sim = sim if sim is not None else SimConfig()
    events = sorted(schedule, key=lambda event: event.iteration)
    for event in events:
        if event.iteration > iterations:
            raise ValueError(
                f"churn at iteration {event.iteration} is beyond the "
                f"{iterations}-iteration run"
            )
    engine = Engine(contention_rate=sim.contention_rate)
    boundaries = [1] + [event.iteration for event in events] + [iterations + 1]
    sizes = [cluster.world_size] + [event.world_size for event in events]
    phases: List[ElasticPhase] = []
    previous_size = None
    for start, end, size in zip(boundaries, boundaries[1:], sizes):
        if end <= start:
            previous_size = size
            continue  # zero-length phase: superseded at the same iteration
        sized = dataclasses.replace(cluster, world_size=size)
        times = []
        for parity in (True, False):
            tasks = build_iteration_tasks(
                method, model, sized, system, sim, batch_size, rank,
                topk_ratio, acp_parity_p=parity,
            )
            times.append(breakdown_from_records(engine.run(tasks)).total)
        added = max(0, size - previous_size) if previous_size is not None else 0
        phases.append(
            ElasticPhase(
                start_iteration=start,
                iterations=end - start,
                world_size=size,
                iteration_time_s=float(np.mean(times)),
                admission_cost_s=added * admission_sync_cost(model, sized),
            )
        )
        previous_size = size
    return ElasticTrace(method=method, phases=tuple(phases))
