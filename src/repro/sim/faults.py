"""Straggler / failure timing model for the performance simulator.

The convergence-side fault machinery (:mod:`repro.faults`) answers "does
training survive?"; this module answers the paper-adjacent *performance*
question: what does an imperfect cluster do to each method's iteration
time? Compression methods differ sharply here — ACP-SGD's single small
all-reduce retransmits cheaply, while S-SGD's large gradient volume pays
``drop_rate`` over far more packets, and every synchronous method is gated
by its slowest rank.

The model perturbs one iteration's task graph (from
:mod:`repro.sim.strategies`) per sample:

- **stragglers** — each rank independently straggles with probability
  ``straggler_prob``; a straggler's compute runs ``1 + sigma * |z|`` times
  slower (``z ~ N(0,1)``). Lockstep synchrony means the iteration is gated
  by the *slowest* rank, so all compute tasks are scaled by the max factor;
- **transfer drops** — each communication task suffers a geometric number
  of retransmissions at rate ``drop_rate``; every retransmission costs a
  detection timeout plus a resend of the transfer;
- **rank downtime** — a failed rank back after ``rank_down_s`` delays every
  collective's start (compute proceeds locally), exercising the engine's
  ``Task.start_after`` gate.

All draws come from one seeded generator, so a trace is reproducible
bit-for-bit. Follows the :mod:`repro.sim.variance` idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.spec import ModelSpec
from repro.sim.calibration import SimConfig
from repro.sim.engine import Engine, Task
from repro.sim.results import breakdown_from_records
from repro.sim.strategies import ClusterSpec, SystemConfig, build_iteration_tasks

_COMPUTE_TAGS = ("forward", "backward", "compression")
_MAX_RETRANSMITS = 10


@dataclass(frozen=True)
class FaultModel:
    """Stochastic cluster imperfections applied to an iteration's tasks.

    Attributes:
        straggler_prob: per-rank per-iteration straggling probability.
        straggler_sigma: straggler severity — slowdown ``1 + sigma * |z|``
          with ``z ~ N(0,1)`` (3.0 models the "3-sigma straggler" question).
        drop_rate: per-transfer probability that a communication task needs
          a retransmission (sampled geometrically, capped at 10).
        retry_timeout_s: detection timeout paid per retransmission, on top
          of resending the transfer itself.
        rank_down_s: seconds from iteration start during which a rank is
          down; collectives cannot start before it recovers.
    """

    straggler_prob: float = 0.0
    straggler_sigma: float = 3.0
    drop_rate: float = 0.0
    retry_timeout_s: float = 0.01
    rank_down_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError(
                f"straggler_prob must be in [0, 1], got {self.straggler_prob}"
            )
        if self.straggler_sigma < 0:
            raise ValueError(
                f"straggler_sigma must be >= 0, got {self.straggler_sigma}"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.retry_timeout_s < 0:
            raise ValueError(
                f"retry_timeout_s must be >= 0, got {self.retry_timeout_s}"
            )
        if self.rank_down_s < 0:
            raise ValueError(f"rank_down_s must be >= 0, got {self.rank_down_s}")

    def sample_compute_slowdown(
        self, world_size: int, rng: np.random.Generator
    ) -> float:
        """The iteration's compute slowdown: the slowest rank gates everyone."""
        straggling = rng.random(world_size) < self.straggler_prob
        if not straggling.any():
            return 1.0
        severities = 1.0 + self.straggler_sigma * np.abs(
            rng.normal(size=int(straggling.sum()))
        )
        return float(severities.max())

    def sample_retransmits(self, rng: np.random.Generator) -> int:
        """Geometric retransmission count for one transfer (capped)."""
        retries = 0
        while retries < _MAX_RETRANSMITS and rng.random() < self.drop_rate:
            retries += 1
        return retries

    def perturb(
        self, tasks: Sequence[Task], world_size: int, rng: np.random.Generator
    ) -> List[Task]:
        """One faulty replay of ``tasks``: scaled compute, retried comm."""
        slowdown = self.sample_compute_slowdown(world_size, rng)
        out: List[Task] = []
        for task in tasks:
            work = task.work
            start_after = task.start_after
            if task.tag in _COMPUTE_TAGS:
                work *= slowdown
            elif task.tag == "comm":
                retries = self.sample_retransmits(rng)
                if retries:
                    work += retries * (task.work + self.retry_timeout_s)
                if self.rank_down_s > 0.0:
                    start_after = max(start_after, self.rank_down_s)
            out.append(
                Task(task.task_id, task.stream, work, task.deps,
                     tag=task.tag, contends=task.contends,
                     priority=task.priority, start_after=start_after)
            )
        return out


@dataclass(frozen=True)
class FaultTrace:
    """Iteration times (seconds) of one method under a fault model."""

    method: str
    clean_time: float
    samples: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def p95(self) -> float:
        return float(np.percentile(self.samples, 95))

    @property
    def worst(self) -> float:
        return float(np.max(self.samples))

    @property
    def slowdown(self) -> float:
        """Mean faulty iteration time relative to the fault-free iteration."""
        return self.mean / self.clean_time if self.clean_time > 0 else float("inf")

    def render(self) -> str:
        return (
            f"{self.method:>14}  clean {self.clean_time * 1e3:8.1f} ms  "
            f"mean {self.mean * 1e3:8.1f} ms  p95 {self.p95 * 1e3:8.1f} ms  "
            f"worst {self.worst * 1e3:8.1f} ms  slowdown {self.slowdown:5.2f}x"
        )


def simulate_fault_trace(
    method: str,
    model: ModelSpec,
    fault_model: FaultModel,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    iterations: int = 50,
    seed: int = 0,
) -> FaultTrace:
    """Replay one iteration ``iterations`` times under ``fault_model``.

    ACP-SGD alternates P/Q parities across iterations like real training.
    The clean baseline is the same parity sequence with no faults, so
    ``slowdown`` isolates the fault cost from parity asymmetry.
    """
    if iterations < 1:
        raise ValueError(f"need >= 1 iteration, got {iterations}")
    cluster = cluster if cluster is not None else ClusterSpec()
    sim = sim if sim is not None else SimConfig()
    rng = np.random.default_rng(seed)
    engine = Engine(contention_rate=sim.contention_rate)
    samples: List[float] = []
    clean_times: List[float] = []
    for idx in range(iterations):
        tasks = build_iteration_tasks(
            method, model, cluster, system, sim, batch_size, rank, topk_ratio,
            acp_parity_p=(idx % 2 == 0),
        )
        if idx < 2:  # both parities cover the clean baseline
            clean_times.append(
                breakdown_from_records(engine.run(tasks)).total
            )
        perturbed = fault_model.perturb(tasks, cluster.world_size, rng)
        samples.append(breakdown_from_records(engine.run(perturbed)).total)
    return FaultTrace(
        method=method,
        clean_time=float(np.mean(clean_times)),
        samples=tuple(samples),
    )


def compare_methods_under_faults(
    methods: Sequence[str],
    model: ModelSpec,
    fault_model: FaultModel,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    iterations: int = 50,
    seed: int = 0,
) -> Dict[str, FaultTrace]:
    """Fault traces for several methods under identical fault draws.

    Each method gets its own generator seeded identically, so the rank-level
    fault pattern (who straggles when) is as comparable as the differing
    task-graph shapes allow.
    """
    return {
        method: simulate_fault_trace(
            method, model, fault_model, cluster, system, sim, batch_size,
            rank, topk_ratio, iterations, seed,
        )
        for method in methods
    }


def render_fault_comparison(traces: Dict[str, FaultTrace]) -> str:
    """Aligned text table of per-method fault traces."""
    return "\n".join(trace.render() for trace in traces.values())
