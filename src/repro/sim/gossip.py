"""Window-length and staleness pricing for the gossip mode.

The closed-world simulator prices one lockstep iteration; the gossip mode
has no lockstep to price. What matters instead is the *window economy*:

- a longer window amortizes the store round-trip (one upload plus
  ``peers - 1`` downloads, priced by the alpha-beta link model of
  :mod:`repro.comm.cost_model`) over more local steps, **but**
- under churn each extra second of window raises the chance a peer
  departs before publishing — its window's compute is wasted — and
- a longer window means every exchanged update is older when applied
  (average staleness ~ half the window in steps), discounting its value
  exactly like the scorer's staleness decay at aggregation time.

:func:`recommend_window_steps` sweeps the window length and maximizes the
expected rate of *useful, freshness-discounted* progress per wall-clock
second — the same figure of merit the paper's throughput model uses, bent
for open membership. The shapes the tests gate on: higher churn pushes
the optimum toward shorter windows, slower links push it toward longer
ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.comm.cost_model import LinkSpec, point_to_point_time


@dataclass(frozen=True)
class GossipWindowSpec:
    """Inputs of the window economy.

    Attributes:
        peers: expected live peer count (each window fetches
            ``peers - 1`` foreign updates).
        update_bytes: size of one published compressed update.
        step_time_s: wall-clock cost of one local training step.
        churn_per_step: probability a given peer departs during any one
            local step (0 = closed world).
        staleness_half_life_steps: steps of staleness at which an
            update's marginal value halves (mirror of the scorer's
            window-denominated ``staleness_half_life``).
    """

    peers: int
    update_bytes: int
    step_time_s: float
    churn_per_step: float = 0.0
    staleness_half_life_steps: float = 8.0

    def __post_init__(self) -> None:
        if self.peers < 2:
            raise ValueError(f"peers must be >= 2, got {self.peers}")
        if self.update_bytes <= 0:
            raise ValueError(
                f"update_bytes must be > 0, got {self.update_bytes}"
            )
        if self.step_time_s <= 0:
            raise ValueError(
                f"step_time_s must be > 0, got {self.step_time_s}"
            )
        if not 0.0 <= self.churn_per_step < 1.0:
            raise ValueError(
                f"churn_per_step must be in [0, 1), got {self.churn_per_step}"
            )
        if self.staleness_half_life_steps <= 0:
            raise ValueError(
                f"staleness_half_life_steps must be > 0, "
                f"got {self.staleness_half_life_steps}"
            )


def window_exchange_time(spec: GossipWindowSpec, link: LinkSpec) -> float:
    """Store round-trip per window: one upload + ``peers - 1`` downloads."""
    return float(spec.peers) * point_to_point_time(spec.update_bytes, link)


def window_survival_probability(
    spec: GossipWindowSpec, local_steps: int
) -> float:
    """Chance a peer survives a whole window and its update gets published."""
    if local_steps < 1:
        raise ValueError(f"local_steps must be >= 1, got {local_steps}")
    return (1.0 - spec.churn_per_step) ** local_steps


def window_utility_rate(
    spec: GossipWindowSpec, link: LinkSpec, local_steps: int
) -> float:
    """Useful freshness-discounted steps per second at this window length.

    Per window a surviving peer contributes ``local_steps`` steps of
    progress, discounted by the average staleness of the exchanged update
    (~ ``local_steps / 2`` steps old on arrival), over the window's
    wall-clock span (compute + store round-trip). Peers that churn
    mid-window contribute nothing — their partial windows are lost.
    """
    if local_steps < 1:
        raise ValueError(f"local_steps must be >= 1, got {local_steps}")
    survival = window_survival_probability(spec, local_steps)
    freshness = 0.5 ** (
        (local_steps / 2.0) / spec.staleness_half_life_steps
    )
    useful = survival * freshness * local_steps
    wall = local_steps * spec.step_time_s + window_exchange_time(spec, link)
    return useful / wall


def recommend_window_steps(
    spec: GossipWindowSpec, link: LinkSpec, max_steps: int = 64
) -> int:
    """Window length (in local steps) maximizing the useful-progress rate.

    Ties break toward the *shorter* window: same throughput at lower
    staleness is strictly better for convergence.
    """
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    best_steps = 1
    best_rate = -math.inf
    for steps in range(1, max_steps + 1):
        rate = window_utility_rate(spec, link, steps)
        if rate > best_rate:
            best_rate = rate
            best_steps = steps
    return best_steps


def render_window_sweep(
    spec: GossipWindowSpec, link: LinkSpec, max_steps: int = 16
) -> str:
    """Table of the window economy for one link (CLI / docs output)."""
    lines: List[str] = [
        f"link {link.name}: alpha={link.alpha * 1e6:.0f}us "
        f"bandwidth={link.beta / 1e9:.2f}GB/s",
        f"{'steps':>5} {'exchange_s':>11} {'survival':>9} {'rate':>9}",
    ]
    for steps in range(1, max_steps + 1):
        lines.append(
            f"{steps:>5} "
            f"{window_exchange_time(spec, link):>11.4f} "
            f"{window_survival_probability(spec, steps):>9.4f} "
            f"{window_utility_rate(spec, link, steps):>9.4f}"
        )
    lines.append(
        f"recommended window: "
        f"{recommend_window_steps(spec, link, max_steps)} steps"
    )
    return "\n".join(lines)
