"""Compute-side cost helpers: layer kernels and compression kernels."""

from __future__ import annotations

from typing import Tuple

from repro.models.spec import LayerSpec
from repro.sim.calibration import SimConfig

FP32 = 4


def layer_forward_time(layer: LayerSpec, batch_size: int, sim: SimConfig) -> float:
    """Forward kernel time of one layer for a batch."""
    return sim.kind_time(layer.kind, layer.forward_flops * batch_size)


def layer_backward_time(layer: LayerSpec, batch_size: int, sim: SimConfig) -> float:
    """Backward kernel time (input + weight gradients) of one layer."""
    return sim.kind_time(layer.kind, layer.backward_flops * batch_size)


def error_feedback_time(n: int, m: int, sim: SimConfig) -> float:
    """Streaming passes for `M + E` and the residual update (2 R/W passes)."""
    return sim.memory_pass_time(2.0 * n * m * FP32)


def lowrank_project_time(n: int, m: int, rank: int, sim: SimConfig) -> float:
    """One skinny projection GEMM: ``(n x m) @ (m x r)`` (or transposed)."""
    return sim.kind_time("gemm_small", 2.0 * n * m * rank)


def orthogonalize_time(rows: int, rank: int, sim: SimConfig) -> float:
    """Reduced QR of a tall-skinny ``rows x rank`` matrix.

    Householder QR costs ``~2 rows rank^2`` FLOPs but is launch-latency
    bound on GPUs for these sizes — ``qr_launch`` dominates for small ranks.
    """
    return sim.qr_launch + sim.kind_time("qr", 2.0 * rows * rank * rank)


def reconstruct_time(n: int, m: int, rank: int, sim: SimConfig) -> float:
    """Decompression GEMM ``P @ Q^T`` back to the dense gradient."""
    return sim.kind_time("gemm_small", 2.0 * n * m * rank)


def pack_copy_time(nbytes: float, sim: SimConfig) -> float:
    """Copy tensors into a fusion buffer (one read + one write pass)."""
    return sim.memory_pass_time(2.0 * nbytes * sim.bucket_copy_overhead)


def sign_compress_time(total_bytes: float, sim: SimConfig) -> float:
    """Sign extraction + 1-bit packing over the fused gradient."""
    elements = total_bytes / FP32
    return sim.gpu.kernel_launch + elements / sim.sign_rate


def sign_decompress_time(total_bytes: float, world_size: int, sim: SimConfig) -> float:
    """Unpack p workers' sign bits and take the majority vote."""
    gathered_bytes = world_size * total_bytes / 32.0  # 1 bit per fp32 element
    return sim.memory_pass_time(gathered_bytes + total_bytes)


def topk_compress_time(total_bytes: float, sim: SimConfig) -> float:
    """Multi-sampling threshold search + gather of the selected values."""
    elements = total_bytes / FP32
    return sim.gpu.kernel_launch + elements / sim.topk_rate


def topk_decompress_time(k: int, world_size: int, sim: SimConfig) -> float:
    """Scatter-add of p workers' (index, value) pairs."""
    return sim.memory_pass_time(world_size * 2.0 * k * FP32)
