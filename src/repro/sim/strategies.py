"""Per-method iteration task graphs for the performance simulator.

``simulate_iteration`` is the single entry point: it builds one training
iteration's task graph for a method under a cluster and system-optimization
configuration, runs the engine, and returns the paper's breakdown.

Methods (METHODS):

- ``ssgd`` — S-SGD: raw gradients, ring all-reduce.
- ``signsgd`` — Sign-SGD w/ majority vote: post-BP packed compression +
  all-gather (the paper's §III characterization setup).
- ``topk`` — Top-k SGD w/ multi-sampling: post-BP packed compression +
  all-gather.
- ``powersgd`` — original Power-SGD: post-BP packed compress P -> all-reduce
  -> orthogonalize/compute Q -> all-reduce -> reconstruct (Fig. 4(a)).
- ``powersgd_star`` — Power-SGD on the DDP communication hook: per-bucket
  compression on a side stream overlapping BP (contending for the GPU,
  Fig. 4(b)).
- ``acpsgd`` — ACP-SGD: inline per-tensor compression in the backward hook
  (serialized with BP on the main stream), single non-blocking all-reduce
  per bucket, compressed-buffer tensor fusion (Fig. 4(c)).

System variants (Fig. 9): ``SystemConfig(wfbp=..., tensor_fusion=...)``.
With ``wfbp=False`` communication (and hook compression) waits for BP to
finish; with ``tensor_fusion=False`` every tensor is its own bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.comm.cost_model import LinkSpec, allgather_time, allreduce_time
from repro.compression.reshaping import matrix_view_shape, should_compress
from repro.models.spec import LayerSpec, ModelSpec, TensorSpec
from repro.sched import TaskGraph
from repro.sim import gpu as gpu_cost
from repro.sim.calibration import LINK_10GBE, SimConfig
from repro.sim.engine import GPU_MAIN, GPU_SIDE, NIC, Engine, Task
from repro.fusion import DEFAULT_BUFFER_BYTES, partition_buckets, scaled_buffer_size
from repro.sim.results import IterationBreakdown, breakdown_from_records

FP32 = 4

METHODS = ("ssgd", "signsgd", "topk", "powersgd", "powersgd_star", "acpsgd")

# Extension methods with timing strategies (not part of the paper's
# evaluation): TernGrad / QSGD ride the Sign-SGD all-gather template; DGC
# rides Top-k's; Random-k — being additive under a shared seed — gets the
# full WFBP+TF treatment like ACP-SGD.
EXTENSION_METHODS = ("terngrad", "qsgd", "randomk", "dgc")
ALL_METHODS = METHODS + EXTENSION_METHODS


@dataclass(frozen=True)
class BuildContext:
    """Resolved inputs handed to a registered per-method graph builder."""

    method: str
    model: ModelSpec
    batch_size: int
    cluster: "ClusterSpec"
    system: "SystemConfig"
    sim: SimConfig
    rank: int
    topk_ratio: float
    acp_parity_p: bool


#: method name -> graph builder. Populated by :func:`register_graph_builder`;
#: new methods plug in here without touching the dispatch code.
_GRAPH_BUILDERS: Dict[str, Callable[[BuildContext], TaskGraph]] = {}


def register_graph_builder(*methods: str):
    """Register a ``BuildContext -> TaskGraph`` builder for method names."""

    def decorate(fn: Callable[[BuildContext], TaskGraph]):
        for method in methods:
            _GRAPH_BUILDERS[method] = fn
        return fn

    return decorate


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster-side configuration: worker count and interconnect.

    Attributes:
        world_size: number of GPUs.
        link: flat alpha-beta interconnect (the default model, calibrated
            to the paper's testbed).
        topology: optional explicit two-level topology; when set, all-reduce
            durations use the best of the flat and hierarchical schedules
            (see :mod:`repro.comm.topology`) instead of the flat link model.
        algorithm_selection: when True (and no topology is given), pick the
            fastest of ring / tree / Rabenseifner per message like NCCL
            (see :mod:`repro.comm.algorithms`); default False keeps the
            paper-calibrated ring model.
    """

    world_size: int = 32
    link: LinkSpec = LINK_10GBE
    topology: Optional["ClusterTopology"] = None
    algorithm_selection: bool = False

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.topology is not None and self.topology.world_size != self.world_size:
            raise ValueError(
                f"topology world size {self.topology.world_size} != "
                f"world_size {self.world_size}"
            )

    def allreduce_cost(self, nbytes: float) -> float:
        """All-reduce wall time under this cluster's communication model."""
        if self.topology is not None:
            from repro.comm.topology import best_allreduce_time

            return best_allreduce_time(nbytes, self.topology)
        if self.algorithm_selection:
            from repro.comm.algorithms import best_allreduce_algorithm

            return best_allreduce_algorithm(nbytes, self.world_size, self.link)[1]
        return allreduce_time(nbytes, self.world_size, self.link)


@dataclass(frozen=True)
class SystemConfig:
    """System-optimization switches (the paper's WFBP / TF study).

    ``scale_compressed_buffer`` toggles the paper's §IV-B design choice of
    deriving ACP-SGD's fusion buffer from the compression rate (25MB x
    rate); disabling it applies the raw buffer size to the compressed
    tensors — the ablation showing why the scaling matters.
    """

    wfbp: bool = True
    tensor_fusion: bool = True
    buffer_bytes: float = DEFAULT_BUFFER_BYTES
    scale_compressed_buffer: bool = True

    def __post_init__(self) -> None:
        if self.buffer_bytes < 0:
            raise ValueError(f"buffer_bytes must be >= 0, got {self.buffer_bytes}")

    @property
    def effective_buffer(self) -> float:
        """Bucket capacity honouring the tensor_fusion switch."""
        return self.buffer_bytes if self.tensor_fusion else 0.0


@dataclass
class _ReadyTensor:
    """A gradient tensor in BP-readiness order with its producing BP task."""

    tensor: TensorSpec
    bp_task: str

    @property
    def nbytes(self) -> int:
        return self.tensor.nbytes


def _compute_tasks(
    model: ModelSpec, batch_size: int, sim: SimConfig
) -> Tuple[List[Task], List[_ReadyTensor], str]:
    """FF + BP task chain; returns (tasks, tensors in readiness order, last bp id)."""
    tasks: List[Task] = []
    prev = ""
    for idx, layer in enumerate(model.layers):
        task_id = f"ff{idx}"
        deps = (prev,) if prev else ()
        tasks.append(
            Task(task_id, GPU_MAIN, gpu_cost.layer_forward_time(layer, batch_size, sim),
                 deps, tag="forward")
        )
        prev = task_id
    ready: List[_ReadyTensor] = []
    for rev_idx, (idx, layer) in enumerate(
        reversed(list(enumerate(model.layers)))
    ):
        task_id = f"bp{idx}"
        tasks.append(
            Task(task_id, GPU_MAIN,
                 gpu_cost.layer_backward_time(layer, batch_size, sim),
                 (prev,), tag="backward")
        )
        prev = task_id
        for tensor in layer.params:
            ready.append(_ReadyTensor(tensor, task_id))
    return tasks, ready, prev


def _lowrank_split(
    ready: Sequence[_ReadyTensor], rank: int
) -> Tuple[List[_ReadyTensor], List[_ReadyTensor]]:
    """(compressible matrices, plain tensors) under the §IV-C rules."""
    matrices: List[_ReadyTensor] = []
    plain: List[_ReadyTensor] = []
    for item in ready:
        shape = item.tensor.shape
        if should_compress(shape):
            n, m = matrix_view_shape(shape)
            r = min(rank, n, m)
            if n * m > (n + m) * r:
                matrices.append(item)
                continue
        plain.append(item)
    return matrices, plain


def _factor_rows(tensor: TensorSpec, rank: int, parity_p: bool) -> Tuple[int, int, int]:
    """(n, m, r) matrix view; the travelling factor has ``n`` (P) or ``m``
    (Q) rows depending on the step parity."""
    n, m = matrix_view_shape(tensor.shape)
    return n, m, min(rank, n, m)


def _bucket_comm_tasks(
    ready: Sequence[_ReadyTensor],
    sizes: Sequence[float],
    buffer_bytes: float,
    cluster: ClusterSpec,
    sim: SimConfig,
    wfbp: bool,
    last_bp: str,
    prefix: str,
    collective: str = "allreduce",
) -> Tuple[List[Task], List[str]]:
    """Fusion buckets -> collective tasks.

    Each bucket becomes one NIC collective, dependent on the producing
    BP/compress task of its *last* tensor (WFBP) or on the end of BP.
    The flat-buffer copy is folded into the collective duration (it is a
    ~0.1ms GPU memcpy per 25MB bucket, negligible against alpha).
    Returns (tasks, comm task ids).
    """
    if len(ready) != len(sizes):
        raise ValueError("sizes must align with tensors")
    tasks: List[Task] = []
    comm_ids: List[str] = []
    buckets = partition_buckets(sizes, buffer_bytes)
    for b_idx, (start, end) in enumerate(buckets):
        bucket_bytes = float(sum(sizes[start:end]))
        dep = ready[end - 1].bp_task if wfbp else last_bp
        comm_id = f"{prefix}_comm{b_idx}"
        if collective == "allreduce":
            duration = cluster.allreduce_cost(bucket_bytes)
        elif collective == "allgather":
            duration = allgather_time(bucket_bytes, cluster.world_size, cluster.link)
        else:
            raise ValueError(f"unknown collective {collective!r}")
        duration += gpu_cost.pack_copy_time(bucket_bytes, sim)
        tasks.append(Task(comm_id, NIC, duration, (dep,), tag="comm"))
        comm_ids.append(comm_id)
    return tasks, comm_ids


# ---------------------------------------------------------------------------
# Method graphs
# ---------------------------------------------------------------------------


def _ssgd_tasks(
    model: ModelSpec, batch_size: int, cluster: ClusterSpec,
    system: SystemConfig, sim: SimConfig,
) -> List[Task]:
    tasks, ready, last_bp = _compute_tasks(model, batch_size, sim)
    sizes = [item.nbytes for item in ready]
    comm_tasks, _ = _bucket_comm_tasks(
        ready, sizes, system.effective_buffer, cluster, sim,
        system.wfbp, last_bp, "grad",
    )
    tasks.extend(comm_tasks)
    return tasks


def _allgather_method_tasks(
    model: ModelSpec, batch_size: int, cluster: ClusterSpec,
    system: SystemConfig, sim: SimConfig, method: str, topk_ratio: float,
) -> List[Task]:
    """All-gather methods: post-BP packed compress -> all-gather -> decode.

    Sign-SGD and Top-k follow the paper's §III-A characterization (packed
    after BP); TernGrad, QSGD and DGC (extensions) ride the same template
    with their own payload sizes and compression costs. WFBP/TF switches do
    not change these graphs.
    """
    tasks, ready, last_bp = _compute_tasks(model, batch_size, sim)
    total_bytes = float(sum(item.nbytes for item in ready))
    total_elems = total_bytes / FP32
    if method == "signsgd":
        compress = gpu_cost.sign_compress_time(total_bytes, sim)
        payload = total_bytes / 32.0  # 1 bit per element
        decompress = gpu_cost.sign_decompress_time(total_bytes, cluster.world_size, sim)
    elif method == "terngrad":
        # 2 bits/element; packing cost ~1.5x sign's (clip + round + pack).
        compress = 1.5 * gpu_cost.sign_compress_time(total_bytes, sim)
        payload = total_bytes / 16.0
        decompress = 2.0 * gpu_cost.sign_decompress_time(
            total_bytes, cluster.world_size, sim
        )
    elif method == "qsgd":
        # 8-bit levels + sign bit; norm pass + stochastic rounding ~2x sign.
        compress = 2.0 * gpu_cost.sign_compress_time(total_bytes, sim)
        payload = total_bytes * 9.0 / 32.0
        decompress = 4.0 * gpu_cost.sign_decompress_time(
            total_bytes, cluster.world_size, sim
        )
    elif method == "dgc":
        # Top-k selection on the velocity + two accumulator update passes.
        k = max(1, int(round(total_elems * topk_ratio)))
        compress = (
            gpu_cost.topk_compress_time(total_bytes, sim)
            + sim.memory_pass_time(4.0 * total_bytes)
        )
        payload = 2.0 * k * FP32
        decompress = gpu_cost.topk_decompress_time(k, cluster.world_size, sim)
    else:  # topk
        k = max(1, int(round(total_elems * topk_ratio)))
        compress = gpu_cost.topk_compress_time(total_bytes, sim)
        payload = 2.0 * k * FP32  # values + indices
        decompress = gpu_cost.topk_decompress_time(k, cluster.world_size, sim)
    tasks.append(Task("compress", GPU_MAIN, compress, (last_bp,), tag="compression"))
    tasks.append(
        Task("gather", NIC,
             sim.allgather_penalty
             * allgather_time(payload, cluster.world_size, cluster.link),
             ("compress",), tag="comm")
    )
    tasks.append(Task("decompress", GPU_MAIN, decompress, ("gather",), tag="compression"))
    return tasks


def _randomk_tasks(
    model: ModelSpec, batch_size: int, cluster: ClusterSpec,
    system: SystemConfig, sim: SimConfig, ratio: float,
) -> List[Task]:
    """Random-k with a shared selection seed (extension).

    Because all workers select identical coordinates, the sparse values are
    *additive* and non-blocking — Random-k enjoys exactly the two §III-C
    properties ACP-SGD is built around, so it gets the full WFBP + scaled
    tensor-fusion treatment: inline per-tensor gather on the main stream,
    fused ring all-reduce of the selected values, scatter on arrival.
    """
    ff_bp_tasks, ready, last_bp = _compute_tasks(model, batch_size, sim)
    tasks: List[Task] = [t for t in ff_bp_tasks if t.tag == "forward"]
    bp_tasks = [t for t in ff_bp_tasks if t.tag == "backward"]

    compress_of: Dict[int, str] = {}
    by_bp: Dict[str, List[_ReadyTensor]] = {}
    for item in ready:
        by_bp.setdefault(item.bp_task, []).append(item)

    def gather_task(item: _ReadyTensor, idx: int, dep: str) -> Task:
        # EF add + masked gather: two streaming passes over the tensor.
        work = sim.memory_pass_time(2.0 * item.nbytes)
        return Task(f"rk_compress{idx}", GPU_MAIN, work, (dep,),
                    tag="compression")

    comp_idx = 0
    if system.wfbp:
        for bp in bp_tasks:
            tasks.append(bp)
            for item in by_bp.get(bp.task_id, []):
                task = gather_task(item, comp_idx, bp.task_id)
                compress_of[id(item)] = task.task_id
                tasks.append(task)
                comp_idx += 1
    else:
        tasks.extend(bp_tasks)
        for item in ready:
            task = gather_task(item, comp_idx, last_bp)
            compress_of[id(item)] = task.task_id
            tasks.append(task)
            comp_idx += 1

    compressed_sizes = [item.nbytes * ratio for item in ready]
    raw_bytes = float(sum(item.nbytes for item in ready))
    if not system.tensor_fusion:
        buffer = 0.0
    elif system.scale_compressed_buffer:
        buffer = scaled_buffer_size(
            system.buffer_bytes, sum(compressed_sizes), raw_bytes
        )
    else:
        buffer = system.buffer_bytes
    for b_idx, (start, end) in enumerate(partition_buckets(compressed_sizes, buffer)):
        bucket_bytes = float(sum(compressed_sizes[start:end]))
        dep = compress_of[id(ready[end - 1])] if system.wfbp else \
            compress_of[id(ready[-1])]
        comm_id = f"rk_comm{b_idx}"
        tasks.append(Task(comm_id, NIC,
                          cluster.allreduce_cost(bucket_bytes),
                          (dep,), tag="comm"))
        raw_bucket = float(sum(ready[i].nbytes for i in range(start, end)))
        tasks.append(Task(f"rk_scatter{b_idx}", GPU_MAIN,
                          sim.memory_pass_time(raw_bucket), (comm_id,),
                          tag="compression"))
    return tasks


def _powersgd_bucket_tasks(
    bucket_idx: int,
    matrices: Sequence[_ReadyTensor],
    plain_bytes: float,
    rank: int,
    dep: str,
    stream: str,
    cluster: ClusterSpec,
    sim: SimConfig,
    ortho_contends: Optional[bool] = None,
) -> List[Task]:
    """One Power-SGD bucket: compress P -> AR -> ortho+Q -> AR -> reconstruct.

    ``plain_bytes`` (uncompressed tensors of the bucket) ride the P
    all-reduce, as in the PowerSGD DDP hook.
    """
    ef = sum(
        gpu_cost.error_feedback_time(*matrix_view_shape(m.tensor.shape), sim=sim)
        for m in matrices
    )
    project_p = sum(
        gpu_cost.lowrank_project_time(*_factor_rows(m.tensor, rank, True), sim=sim)
        for m in matrices
    )
    p_bytes = sum(
        _factor_rows(m.tensor, rank, True)[0]
        * _factor_rows(m.tensor, rank, True)[2] * FP32
        for m in matrices
    )
    q_bytes = sum(
        _factor_rows(m.tensor, rank, True)[1]
        * _factor_rows(m.tensor, rank, True)[2] * FP32
        for m in matrices
    )
    ortho = sum(
        gpu_cost.orthogonalize_time(
            _factor_rows(m.tensor, rank, True)[0],
            _factor_rows(m.tensor, rank, True)[2], sim)
        for m in matrices
    )
    project_q = sum(
        gpu_cost.lowrank_project_time(*_factor_rows(m.tensor, rank, True), sim=sim)
        for m in matrices
    )
    reconstruct = sum(
        gpu_cost.reconstruct_time(*_factor_rows(m.tensor, rank, True), sim=sim)
        for m in matrices
    )
    prefix = f"psgd{bucket_idx}"
    # QR is launch-latency bound and does not contend for SMs; the EF pass,
    # the projections and the reconstruction are FLOP-heavy and do.
    tasks = [
        Task(f"{prefix}_compress_p", stream, ef + project_p, (dep,),
             tag="compression", contends=True),
        Task(f"{prefix}_comm_p", NIC,
             cluster.allreduce_cost(p_bytes + plain_bytes),
             (f"{prefix}_compress_p",), tag="comm"),
        Task(f"{prefix}_ortho", stream, ortho, (f"{prefix}_comm_p",),
             tag="compression",
             contends=sim.qr_contends if ortho_contends is None else ortho_contends),
        Task(f"{prefix}_project_q", stream, project_q, (f"{prefix}_ortho",),
             tag="compression", contends=True),
        Task(f"{prefix}_comm_q", NIC,
             cluster.allreduce_cost(q_bytes),
             (f"{prefix}_project_q",), tag="comm"),
        Task(f"{prefix}_reconstruct", stream, reconstruct,
             (f"{prefix}_comm_q",), tag="compression", contends=True),
    ]
    return tasks


def _powersgd_tasks(
    model: ModelSpec, batch_size: int, cluster: ClusterSpec,
    system: SystemConfig, sim: SimConfig, rank: int, hook: bool,
) -> List[Task]:
    """Power-SGD (``hook=False``: original post-BP; ``hook=True``: Power-SGD*)."""
    tasks, ready, last_bp = _compute_tasks(model, batch_size, sim)
    overlap = system.wfbp and hook
    stream = GPU_SIDE if overlap else GPU_MAIN

    if not hook:
        # Original Power-SGD: packed after BP, batched by matrix shape
        # (Vogels' reference implementation batches same-shape matrices into
        # one batched GEMM/QR and one collective per shape group per factor).
        matrices, plain = _lowrank_split(ready, rank)
        plain_bytes = float(sum(item.nbytes for item in plain))
        if not system.tensor_fusion:
            # Naive variant: per-tensor collectives — same payload split into
            # one all-reduce per matrix, charging the startup cost each time.
            tasks.extend(
                _powersgd_naive_comm(
                    matrices, plain, rank, last_bp, stream, cluster, sim
                )
            )
            return tasks
        groups: Dict[Tuple[int, int], List[_ReadyTensor]] = {}
        for item in matrices:
            groups.setdefault(matrix_view_shape(item.tensor.shape), []).append(item)
        for g_idx, group in enumerate(groups.values()):
            tasks.extend(
                _powersgd_bucket_tasks(
                    g_idx, group, plain_bytes if g_idx == 0 else 0.0, rank,
                    last_bp, stream, cluster, sim,
                )
            )
        return tasks

    # DDP-hook Power-SGD*: buckets of raw gradient bytes in readiness order.
    # The hook's stages queue on the side stream in completion order — a
    # bucket's orthogonalize/Q callback runs when its P all-reduce future
    # resolves, typically before the next bucket's gradients are ready — so
    # per-bucket interleaved FIFO order models the real pipeline.
    sizes = [item.nbytes for item in ready]
    buckets = partition_buckets(sizes, system.effective_buffer)
    # Fine-grained (per-tensor, no TF) hooks launch a storm of tiny kernels
    # that stalls the main stream: their orthogonalizations contend too.
    ortho_contends = True if not system.tensor_fusion else None
    for b_idx, (start, end) in enumerate(buckets):
        bucket_items = ready[start:end]
        matrices, plain = _lowrank_split(bucket_items, rank)
        plain_bytes = float(sum(item.nbytes for item in plain))
        dep = bucket_items[-1].bp_task if system.wfbp else last_bp
        tasks.extend(
            _powersgd_bucket_tasks(
                b_idx, matrices, plain_bytes, rank, dep, stream, cluster, sim,
                ortho_contends=ortho_contends,
            )
        )
    return tasks


def _powersgd_naive_comm(
    matrices: Sequence[_ReadyTensor],
    plain: Sequence[_ReadyTensor],
    rank: int,
    last_bp: str,
    stream: str,
    cluster: ClusterSpec,
    sim: SimConfig,
) -> List[Task]:
    """Power-SGD without TF: per-matrix P/Q all-reduces (startup-bound)."""
    tasks: List[Task] = []
    compress_ids: List[str] = []
    for idx, item in enumerate(matrices):
        n, m, r = _factor_rows(item.tensor, rank, True)
        cid = f"psgdn_compress_p{idx}"
        tasks.append(
            Task(cid, stream,
                 gpu_cost.error_feedback_time(n, m, sim)
                 + gpu_cost.lowrank_project_time(n, m, r, sim),
                 (last_bp,), tag="compression")
        )
        tasks.append(
            Task(f"psgdn_comm_p{idx}", NIC,
                 cluster.allreduce_cost(n * r * FP32),
                 (cid,), tag="comm")
        )
        oid = f"psgdn_ortho_q{idx}"
        tasks.append(
            Task(oid, stream,
                 gpu_cost.orthogonalize_time(n, r, sim)
                 + gpu_cost.lowrank_project_time(n, m, r, sim),
                 (f"psgdn_comm_p{idx}",), tag="compression")
        )
        tasks.append(
            Task(f"psgdn_comm_q{idx}", NIC,
                 cluster.allreduce_cost(m * r * FP32),
                 (oid,), tag="comm")
        )
        tasks.append(
            Task(f"psgdn_reconstruct{idx}", stream,
                 gpu_cost.reconstruct_time(n, m, r, sim),
                 (f"psgdn_comm_q{idx}",), tag="compression")
        )
    for idx, item in enumerate(plain):
        tasks.append(
            Task(f"psgdn_plain_comm{idx}", NIC,
                 cluster.allreduce_cost(item.nbytes),
                 (last_bp,), tag="comm")
        )
    return tasks


def _acpsgd_tasks(
    model: ModelSpec, batch_size: int, cluster: ClusterSpec,
    system: SystemConfig, sim: SimConfig, rank: int, parity_p: bool,
) -> List[Task]:
    """ACP-SGD: inline hook compression, one all-reduce per fused bucket."""
    ff_bp_tasks, ready, last_bp = _compute_tasks(model, batch_size, sim)
    matrices, plain = _lowrank_split(ready, rank)
    matrix_set = {id(item) for item in matrices}

    # --- Inline compression tasks, interleaved with BP in FIFO order. ---
    # Rebuild the main-stream queue: after each BP task, the compression
    # tasks of the tensors that BP task produced (WFBP). Without WFBP all
    # compression queues after the full BP.
    tasks: List[Task] = [t for t in ff_bp_tasks if t.tag == "forward"]
    bp_tasks = [t for t in ff_bp_tasks if t.tag == "backward"]
    compress_of: Dict[int, str] = {}  # id(_ReadyTensor) -> compress task id
    by_bp: Dict[str, List[_ReadyTensor]] = {}
    for item in matrices:
        by_bp.setdefault(item.bp_task, []).append(item)

    def compression_task(item: _ReadyTensor, idx: int, dep: str) -> Task:
        n, m = matrix_view_shape(item.tensor.shape)
        r = min(rank, n, m)
        carried_rows = m if parity_p else n
        work = (
            gpu_cost.error_feedback_time(n, m, sim)
            + gpu_cost.orthogonalize_time(carried_rows, r, sim)
            + gpu_cost.lowrank_project_time(n, m, r, sim)
        )
        return Task(f"acp_compress{idx}", GPU_MAIN, work, (dep,), tag="compression")

    comp_idx = 0
    if system.wfbp:
        for bp in bp_tasks:
            tasks.append(bp)
            for item in by_bp.get(bp.task_id, []):
                task = compression_task(item, comp_idx, bp.task_id)
                compress_of[id(item)] = task.task_id
                tasks.append(task)
                comp_idx += 1
    else:
        tasks.extend(bp_tasks)
        for item in matrices:
            task = compression_task(item, comp_idx, last_bp)
            compress_of[id(item)] = task.task_id
            tasks.append(task)
            comp_idx += 1

    # --- Fused all-reduce of the compressed factors. ---
    def factor_bytes(item: _ReadyTensor) -> float:
        n, m = matrix_view_shape(item.tensor.shape)
        r = min(rank, n, m)
        rows = n if parity_p else m
        return float(rows * r * FP32)

    factor_sizes = [factor_bytes(item) for item in matrices]
    raw_bytes = float(sum(item.nbytes for item in ready))
    if not system.tensor_fusion:
        comp_buffer = 0.0
    elif system.scale_compressed_buffer:
        comp_buffer = scaled_buffer_size(
            system.buffer_bytes, sum(factor_sizes), raw_bytes
        )
    else:
        comp_buffer = system.buffer_bytes
    comm_ids: List[str] = []
    buckets = partition_buckets(factor_sizes, comp_buffer)
    for b_idx, (start, end) in enumerate(buckets):
        bucket_bytes = float(sum(factor_sizes[start:end]))
        last_item = matrices[end - 1]
        dep = compress_of[id(last_item)] if system.wfbp else compress_of[id(matrices[-1])]
        # Without WFBP the bucket still waits for all compression (which is
        # itself queued after BP); with WFBP it waits only for its last
        # member's compression.
        comm_id = f"acp_comm{b_idx}"
        tasks.append(Task(comm_id, NIC,
                          cluster.allreduce_cost(bucket_bytes),
                          (dep,), tag="comm"))
        comm_ids.append(comm_id)
        # Reconstruction (P Q^T) per bucket once its factor is aggregated.
        reconstruct = sum(
            gpu_cost.reconstruct_time(
                *matrix_view_shape(matrices[i].tensor.shape),
                min(rank, *matrix_view_shape(matrices[i].tensor.shape)), sim)
            for i in range(start, end)
        )
        tasks.append(Task(f"acp_reconstruct{b_idx}", GPU_MAIN, reconstruct,
                          (comm_id,), tag="compression"))

    # --- Plain (vector) tensors: fused uncompressed all-reduce. ---
    plain_sizes = [float(item.nbytes) for item in plain]
    if plain:
        plain_tasks, _ = _bucket_comm_tasks(
            plain, plain_sizes, system.effective_buffer, cluster, sim,
            system.wfbp, last_bp, "acp_plain",
        )
        tasks.extend(plain_tasks)
    return tasks


# ---------------------------------------------------------------------------
# Registered graph builders: each method's hand-built timeline, expressed
# as a ``BuildContext -> TaskGraph`` constructor over the repro.sched core.
# ---------------------------------------------------------------------------


@register_graph_builder("ssgd")
def _ssgd_graph(ctx: BuildContext) -> TaskGraph:
    return TaskGraph(
        _ssgd_tasks(ctx.model, ctx.batch_size, ctx.cluster, ctx.system, ctx.sim)
    )


@register_graph_builder("signsgd", "topk", "terngrad", "qsgd", "dgc")
def _allgather_graph(ctx: BuildContext) -> TaskGraph:
    return TaskGraph(
        _allgather_method_tasks(
            ctx.model, ctx.batch_size, ctx.cluster, ctx.system, ctx.sim,
            ctx.method, ctx.topk_ratio,
        )
    )


@register_graph_builder("randomk")
def _randomk_graph(ctx: BuildContext) -> TaskGraph:
    return TaskGraph(
        _randomk_tasks(
            ctx.model, ctx.batch_size, ctx.cluster, ctx.system, ctx.sim,
            ctx.topk_ratio,
        )
    )


@register_graph_builder("powersgd", "powersgd_star")
def _powersgd_graph(ctx: BuildContext) -> TaskGraph:
    return TaskGraph(
        _powersgd_tasks(
            ctx.model, ctx.batch_size, ctx.cluster, ctx.system, ctx.sim,
            ctx.rank, hook=(ctx.method == "powersgd_star"),
        )
    )


@register_graph_builder("acpsgd")
def _acpsgd_graph(ctx: BuildContext) -> TaskGraph:
    return TaskGraph(
        _acpsgd_tasks(
            ctx.model, ctx.batch_size, ctx.cluster, ctx.system, ctx.sim,
            ctx.rank, ctx.acp_parity_p,
        )
    )


def build_iteration_graph(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    acp_parity_p: bool = True,
) -> TaskGraph:
    """Build (without running) one iteration's task graph for a method.

    Dispatches to the builder registered for ``method`` (see
    :func:`register_graph_builder`). For ACP-SGD, ``acp_parity_p`` picks
    the P-step (odd) or Q-step (even) graph.
    """
    cluster = cluster if cluster is not None else ClusterSpec()
    system = system if system is not None else SystemConfig()
    sim = sim if sim is not None else SimConfig()
    batch = batch_size if batch_size is not None else model.default_batch_size
    if batch < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch}")
    builder = _GRAPH_BUILDERS.get(method)
    if builder is None:
        raise ValueError(f"unknown method {method!r}; available: {ALL_METHODS}")
    return builder(
        BuildContext(
            method=method, model=model, batch_size=batch, cluster=cluster,
            system=system, sim=sim, rank=rank, topk_ratio=topk_ratio,
            acp_parity_p=acp_parity_p,
        )
    )


def build_iteration_tasks(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    acp_parity_p: bool = True,
) -> List[Task]:
    """Task-list view of :func:`build_iteration_graph` (legacy API)."""
    return list(
        build_iteration_graph(
            method, model, cluster, system, sim, batch_size, rank,
            topk_ratio, acp_parity_p,
        ).tasks
    )


def simulate_iteration_records(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    acp_parity_p: bool = True,
):
    """Simulate one iteration and return the raw per-task records.

    The records feed :func:`repro.sim.trace.to_chrome_trace` for timeline
    visualization. For ACP-SGD this runs a single parity (default: P-step).
    """
    sim = sim if sim is not None else SimConfig()
    tasks = build_iteration_tasks(
        method, model, cluster, system, sim, batch_size, rank, topk_ratio,
        acp_parity_p,
    )
    return Engine(contention_rate=sim.contention_rate).run(tasks)


def simulate_iteration(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    topk_ratio: float = 0.001,
    fault_model: Optional["FaultModel"] = None,
    fault_seed: int = 0,
) -> IterationBreakdown:
    """Simulate one training iteration and return its timing breakdown.

    Args:
        method: one of :data:`METHODS`.
        model: shape-level model spec.
        cluster: worker count + link (default 32 x 10GbE, the paper's).
        system: WFBP / TF switches (default both on, 25MB buffer).
        sim: calibration constants.
        batch_size: per-GPU batch (default: the spec's paper batch size).
        rank: Power-SGD / ACP-SGD rank.
        topk_ratio: Top-k keep fraction (paper: 0.001).
        fault_model: optional :class:`~repro.sim.faults.FaultModel`; the
            iteration's tasks are perturbed (stragglers, retransmits, rank
            downtime) before simulation, deterministically per
            ``fault_seed``. Multi-sample fault studies should use
            :func:`repro.sim.faults.simulate_fault_trace` instead.
        fault_seed: seed for the fault draws (ignored without a model).

    For ACP-SGD the result averages the P-step and Q-step parities (their
    factor sizes differ slightly).
    """
    cluster = cluster if cluster is not None else ClusterSpec()
    system = system if system is not None else SystemConfig()
    sim = sim if sim is not None else SimConfig()
    batch = batch_size if batch_size is not None else model.default_batch_size
    if batch < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch}")

    def maybe_perturb(tasks: List[Task], parity_idx: int) -> List[Task]:
        if fault_model is None:
            return tasks
        import numpy as np

        rng = np.random.default_rng((fault_seed, parity_idx))
        return fault_model.perturb(tasks, cluster.world_size, rng)

    engine = Engine(contention_rate=sim.contention_rate)
    if method == "acpsgd":
        first = breakdown_from_records(
            engine.run(maybe_perturb(
                _acpsgd_tasks(model, batch, cluster, system, sim, rank, True), 0
            ))
        )
        second = breakdown_from_records(
            engine.run(maybe_perturb(
                _acpsgd_tasks(model, batch, cluster, system, sim, rank, False), 1
            ))
        )
        return IterationBreakdown(
            total=(first.total + second.total) / 2,
            ffbp=(first.ffbp + second.ffbp) / 2,
            compression=(first.compression + second.compression) / 2,
            comm_nonoverlap=(first.comm_nonoverlap + second.comm_nonoverlap) / 2,
        )
    tasks = build_iteration_tasks(
        method, model, cluster, system, sim, batch, rank, topk_ratio
    )
    return breakdown_from_records(engine.run(maybe_perturb(tasks, 0)))
