"""Calibration constants for the performance simulator.

Every constant is pinned, where possible, to a number the paper itself
reports about its testbed (8 nodes x 4 RTX 2080 Ti, PCIe3 x16, 10GbE,
PyTorch 1.12 + NCCL 2.10). The calibration test suite
(``tests/test_calibration.py``) asserts the anchors below stay within
tolerance:

- S-SGD fused all-reduce of ResNet-50's 97.5MB of gradients ~ 169ms on
  10GbE/32 ranks (§IV-B) — fixes ``beta`` near 1.15GB/s;
- one 64KB all-reduce ~ 1.2ms, two 32KB all-reduces ~ 2.0ms (§II-A.3) and
  ResNet-50's 161 tensor-by-tensor all-reduces ~ 243ms — jointly fix
  ``alpha`` near 13us (they over-determine it; we take the compromise);
- FF&BP wall times inferred from Table III / Fig. 3 (ResNet-50 bs64
  ~ 235ms, BERT-Base bs32 ~ 180ms) — fix the per-kind GPU efficiency
  factors;
- Power-SGD* being ~13% slower than Power-SGD on one GPU (§III-C) — fixes
  ``contention_rate``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.comm.cost_model import (
    ETHERNET_1G as LINK_1GBE,
    ETHERNET_10G as LINK_10GBE,
    INFINIBAND_100G as LINK_100GBIB,
    LinkSpec,
)
from repro.comm.topology import ClusterTopology


@dataclass(frozen=True)
class GPUSpec:
    """Compute-side cost model of one accelerator.

    Attributes:
        name: device name.
        peak_flops: fp32 peak, FLOP/s.
        efficiency: achieved fraction of peak by op kind. Convolutions on
            2080 Ti reach ~25% of peak through cuDNN at these sizes; large
            GEMMs ~45%; normalization / elementwise ops are memory-bound
            (expressed here as a low FLOP efficiency on their small FLOP
            counts).
        kernel_launch: fixed per-kernel overhead (s); matters for the very
            deep ResNet-152 (~500 kernels per pass).
        memory_bandwidth: effective DRAM bandwidth (B/s) for memory-bound
            passes (packing, sign/top-k scans).
    """

    name: str
    peak_flops: float
    efficiency: Dict[str, float]
    kernel_launch: float
    memory_bandwidth: float

    def flops_rate(self, kind: str) -> float:
        """Achieved FLOP/s for an op kind (falls back to 'elementwise')."""
        eff = self.efficiency.get(kind, self.efficiency["elementwise"])
        return self.peak_flops * eff


RTX2080TI = GPUSpec(
    name="RTX 2080 Ti",
    peak_flops=13.45e12,
    efficiency={
        # >0.4 of peak on convs: cuDNN uses Winograd for the 3x3 layers,
        # which beats the naive MAC count this spec charges.
        "conv": 0.50,
        "gemm": 0.44,
        "gemm_small": 0.08,  # skinny low-rank products (n x m @ m x r)
        "norm": 0.15,
        "elementwise": 0.15,
        "embedding": 0.10,
        "qr": 0.02,  # reduced QR of tall-skinny matrices is latency-bound
    },
    kernel_launch=8e-6,
    memory_bandwidth=450e9,  # of 616 GB/s nominal
)


@dataclass(frozen=True)
class SimConfig:
    """Simulator-wide knobs.

    Attributes:
        gpu: the accelerator cost model.
        contention_rate: progress rate of each GPU stream while both run
            *contending* (FLOP-heavy) kernels. 0.15 reproduces the paper's
            Table III ordering: Power-SGD*'s GEMM-heavy hook compression on
            the BERTs inflates back-propagation enough to lose to plain
            Power-SGD (516 vs 392ms on BERT-Large), while the ResNets'
            QR-launch-bound compression (``contends=False`` tasks) overlaps
            benignly and Power-SGD* wins there — both effects §V-C reports.
        qr_launch: fixed overhead per orthogonalization call.
            ``torch.linalg.qr`` on a tall-skinny matrix launches dozens of
            tiny kernels; ~0.2ms per matrix makes per-matrix
            orthogonalization the dominant Power-SGD compression cost on
            ResNets (53+ matrices), as the paper's breakdowns show.
        qr_contends: whether *bucketed* orthogonalization contends with BP.
            Default False (tall-skinny QR barely occupies the SMs). Fine
            grained per-tensor hooks (WFBP without TF) always contend —
            their kernel-launch storms stall the main stream, the paper's
            Fig. 9 "WFBP hurts Power-SGD" effect.
        sign_rate: elements/s for sign extraction + 1-bit packing in the
            paper's PyTorch implementation (not a fused CUDA kernel).
        topk_rate: elements/s for multi-sampling top-k selection. The paper
            reports Top-k compression ~4x Sign-SGD's (Fig. 3) and Top-k SGD
            1.66x slower than S-SGD end-to-end on ResNet-50 (Fig. 2); a
            ~0.22G elem/s selection rate (~4.5ns/element, dominated by the
            masked-gather of selected values) reproduces both.
        allgather_penalty: multiplier on all-gather wall time vs the ideal
            ring model. NCCL's all-gather of per-rank compressed payloads on
            Ethernet reaches far lower efficiency than ring all-reduce of
            large fused buffers; x2.5 reproduces the paper's observation
            that Sign-SGD's communication is 24% *higher* than S-SGD's on
            BERT-Base despite the 32x smaller payload (§III-C).
        bucket_copy_overhead: per-bucket fused-copy cost factor (bytes /
            memory bandwidth), the TF "copy into flat buffer" step.
    """

    gpu: GPUSpec = RTX2080TI
    contention_rate: float = 0.15
    qr_launch: float = 200e-6
    qr_contends: bool = False
    sign_rate: float = 0.9e9
    topk_rate: float = 0.22e9
    allgather_penalty: float = 2.5
    bucket_copy_overhead: float = 1.0

    def kind_time(self, kind: str, flops: float) -> float:
        """Seconds to execute ``flops`` of an op kind, plus launch overhead."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        if flops == 0:
            return 0.0
        return self.gpu.kernel_launch + flops / self.gpu.flops_rate(kind)

    def memory_pass_time(self, nbytes: float, passes: float = 1.0) -> float:
        """Seconds for ``passes`` streaming passes over ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.gpu.kernel_launch + passes * nbytes / self.gpu.memory_bandwidth


# Network presets: aliases of the canonical definitions in
# repro.comm.cost_model (see the calibration discussion there).
SIM_LINKS = {link.name: link for link in (LINK_1GBE, LINK_10GBE, LINK_100GBIB)}


class CalibrationGeneration:
    """Monotone counter stamped on every re-anchoring of the link model.

    Anything that memoizes simulator output (the :mod:`repro.serve` result
    cache) records the generation current at compute time and must treat an
    entry whose generation predates the latest
    :func:`fit_link_from_bucket_timings` as stale: a re-anchored
    ``LinkSpec`` changes every simulated duration, so results priced under
    the old calibration can never be served again.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def bump(self) -> int:
        """Advance the generation; returns the new value."""
        with self._lock:
            self._value += 1
            return self._value


#: Process-wide generation, bumped by ``fit_link_from_bucket_timings``.
CALIBRATION_GENERATION = CalibrationGeneration()


def fit_link_from_bucket_timings(
    samples: Sequence[Tuple[float, float]],
    world_size: int,
    name: str = "calibrated",
    nominal_gbps: float = 0.0,
) -> LinkSpec:
    """Fit an alpha-beta :class:`LinkSpec` to measured per-bucket timings.

    The bucketed reducer times every ``reduce_bucket`` call
    (:attr:`repro.train.reducer.BucketedReducer.last_timings`); under the
    ring model those times are linear in the bucket's byte size,
    ``t(n) = 2(p-1) alpha + 2 n (p-1) / (p beta)`` (the same formula
    :func:`repro.comm.cost_model.allreduce_time` prices), so a least
    squares line through ``(nbytes, seconds)`` samples recovers the link
    parameters the simulator should use for *this* machine. This closes
    the loop the paper draws between measurement and simulation: the
    simulator's network model can be re-anchored to real per-bucket
    timings instead of the testbed constants above.

    Every successful fit bumps :data:`CALIBRATION_GENERATION`, which
    invalidates memoized simulator results (the planning service's cache)
    computed under the previous calibration.

    Args:
        samples: ``(nbytes, seconds)`` pairs, e.g. one per fired bucket
            per step. Needs at least two distinct sizes.
        world_size: ring size ``p`` the timings were measured at; must be
            >= 2 (a single rank performs no communication to fit).
        name/nominal_gbps: passed through to the returned spec.

    Raises:
        ValueError: on ``world_size < 2``, too few distinct sizes, or a
            non-positive fitted slope (timings not increasing with size —
            no bandwidth term can explain them).
    """
    if world_size < 2:
        raise ValueError(
            f"world_size must be >= 2 to fit a link, got {world_size}"
        )
    sizes = np.array([float(nbytes) for nbytes, _ in samples])
    times = np.array([float(seconds) for _, seconds in samples])
    if sizes.size < 2 or np.unique(sizes).size < 2:
        raise ValueError(
            "need timings at >= 2 distinct bucket sizes to fit alpha and "
            f"beta, got {np.unique(sizes).size}"
        )
    if np.any(sizes < 0) or np.any(times < 0):
        raise ValueError("bucket sizes and timings must be >= 0")
    slope, intercept = np.polyfit(sizes, times, 1)
    if slope <= 0:
        raise ValueError(
            f"fitted slope {slope:.3e} s/byte is not positive; the timings "
            "do not grow with bucket size (likely noise-dominated: use "
            "more iterations or larger buckets)"
        )
    p = world_size
    alpha = max(0.0, float(intercept)) / (2 * (p - 1))
    beta = 2 * (p - 1) / (p * float(slope))
    spec = LinkSpec(
        name=name, alpha=alpha, beta=beta, nominal_gbps=nominal_gbps
    )
    # A successful fit re-anchors the simulator's network model: invalidate
    # every memoized simulator result (see CALIBRATION_GENERATION).
    CALIBRATION_GENERATION.bump()
    return spec


def fit_topology_from_bucket_timings(
    intra_samples: Sequence[Tuple[float, float]],
    inter_samples: Sequence[Tuple[float, float]],
    topology: ClusterTopology,
    name: str = "calibrated",
) -> ClusterTopology:
    """Re-anchor *both* link levels of a two-level topology from timings.

    The hierarchical all-reduce exposes each level separately: intra-node
    ring phases run over ``gpus_per_node`` ranks on the fast link, the
    inter-node ring over ``num_nodes`` leaders on the NIC. Timing each in
    isolation (e.g. single-node bucket timings for intra, leader-only
    all-reduce timings for inter) gives two independent alpha-beta fits,
    each via :func:`fit_link_from_bucket_timings` at its own ring size.

    Args:
        intra_samples: ``(nbytes, seconds)`` pairs measured over one
            node's ``gpus_per_node`` GPUs (needs ``gpus_per_node >= 2``).
        inter_samples: pairs measured over the ``num_nodes`` node leaders
            (needs ``num_nodes >= 2``).
        topology: the shape to calibrate; link specs are replaced, the
            node arrangement is kept.
        name: stem for the fitted specs (``{name}-intra`` /
            ``{name}-inter``).

    Returns:
        A new :class:`~repro.comm.topology.ClusterTopology` with both
        links re-anchored. Bumps :data:`CALIBRATION_GENERATION` (via the
        per-level fits), invalidating memoized simulator results.
    """
    from dataclasses import replace as _replace

    intra = fit_link_from_bucket_timings(
        intra_samples, topology.gpus_per_node, name=f"{name}-intra"
    )
    inter = fit_link_from_bucket_timings(
        inter_samples, topology.num_nodes, name=f"{name}-inter"
    )
    return _replace(topology, intra_link=intra, inter_link=inter)
