"""Iteration-time variance: mean +/- std over repeated jittered iterations.

The paper's Table III reports ``mean +/- std`` over 100 measured iterations
(std <= 12ms — a stable, dedicated testbed). The base simulator is
deterministic; this module adds multiplicative log-normal jitter to every
task's duration (kernel-time variation, NIC scheduling noise) and replays
the iteration, yielding a distribution:

    >>> d = simulate_iteration_distribution("acpsgd", spec, rank=32)
    >>> d.mean_ms, d.std_ms

A per-task sigma of ~2% reproduces the paper's iteration-level std range
(a few ms on 200-2300ms iterations) because independent per-task noise
averages out across hundreds of tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.models.spec import ModelSpec
from repro.sim.calibration import SimConfig
from repro.sim.engine import Engine, Task
from repro.sim.results import breakdown_from_records
from repro.sim.strategies import ClusterSpec, SystemConfig, build_iteration_tasks


@dataclass(frozen=True)
class IterationDistribution:
    """Summary of repeated jittered iteration simulations (seconds)."""

    samples: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def std_ms(self) -> float:
        return self.std * 1e3

    def render(self, label: str = "") -> str:
        prefix = f"{label}: " if label else ""
        return f"{prefix}{self.mean_ms:.0f} +/- {self.std_ms:.0f} ms"


def _jitter_tasks(
    tasks: List[Task], rng: np.random.Generator, sigma: float
) -> List[Task]:
    """Scale each task's work by an independent log-normal factor."""
    factors = np.exp(rng.normal(0.0, sigma, size=len(tasks)))
    return [
        Task(t.task_id, t.stream, t.work * factor, t.deps,
             tag=t.tag, contends=t.contends, priority=t.priority,
             start_after=t.start_after)
        for t, factor in zip(tasks, factors)
    ]


def simulate_iteration_distribution(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    iterations: int = 30,
    jitter_sigma: float = 0.02,
    seed: int = 0,
) -> IterationDistribution:
    """Replay one iteration ``iterations`` times with per-task jitter.

    For ACP-SGD, iterations alternate P/Q parities like real training, so
    the parity difference contributes to the reported std exactly as it
    would on hardware.
    """
    if iterations < 2:
        raise ValueError(f"need >= 2 iterations, got {iterations}")
    if jitter_sigma < 0:
        raise ValueError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
    sim = sim if sim is not None else SimConfig()
    rng = np.random.default_rng(seed)
    engine = Engine(contention_rate=sim.contention_rate)
    samples = []
    for idx in range(iterations):
        tasks = build_iteration_tasks(
            method, model, cluster, system, sim, batch_size, rank,
            acp_parity_p=(idx % 2 == 0),
        )
        jittered = _jitter_tasks(tasks, rng, jitter_sigma)
        records = engine.run(jittered)
        samples.append(breakdown_from_records(records).total)
    return IterationDistribution(tuple(samples))
