"""Discrete-event cluster performance simulator.

Substitutes for the paper's 32-GPU testbed (see DESIGN.md §1). One worker's
iteration timeline is simulated over three resources:

- ``gpu_main`` — the default CUDA stream: FF/BP layer kernels and inline
  compression (ACP-SGD's backward-hook compression, post-BP compression of
  Sign-SGD / Top-k / original Power-SGD);
- ``gpu_side`` — a side stream used by Power-SGD*'s DDP communication hook,
  which runs bucket compression concurrently with back-propagation.
  ``gpu_main``/``gpu_side`` **contend**: when both are busy each progresses
  at :data:`~repro.sim.calibration.SimConfig.contention_rate` of full speed,
  reproducing the paper's observed ~13% one-GPU slowdown of Power-SGD with
  WFBP (§III-C);
- ``nic`` — collectives priced by the alpha-beta model of
  :mod:`repro.comm.cost_model`.

Strategies (:mod:`repro.sim.strategies`) build the per-method task graph
(S-SGD, Sign-SGD, Top-k, Power-SGD, Power-SGD*, ACP-SGD) under a
:class:`~repro.sim.strategies.SystemConfig` (WFBP on/off, tensor fusion
on/off, buffer size), and :mod:`repro.sim.results` reports the paper's
breakdown metric: FF&BP time, compression time, non-overlapped
communication time.
"""

from repro.sim.calibration import (
    GPUSpec,
    SimConfig,
    RTX2080TI,
    fit_link_from_bucket_timings,
)
from repro.sim.engine import Engine, Task
from repro.fusion import partition_buckets, scaled_buffer_size
from repro.sim.results import IterationBreakdown
from repro.sim.strategies import (
    ClusterSpec,
    SystemConfig,
    build_iteration_tasks,
    simulate_iteration,
    simulate_iteration_records,
    ALL_METHODS,
    EXTENSION_METHODS,
    METHODS,
)
from repro.sim.autotune import TuneResult, autotune_buffer_size
from repro.sim.gantt import render_gantt
from repro.sim.memory import (
    MemoryEstimate,
    RTX2080TI_MEMORY_BYTES,
    estimate_memory,
    memory_report,
)
from repro.sim.pipeline import SteadyStateResult, simulate_steady_state
from repro.sim.trace import to_chrome_trace, write_chrome_trace
from repro.sim.variance import (
    IterationDistribution,
    simulate_iteration_distribution,
)
from repro.sim.gossip import (
    GossipWindowSpec,
    recommend_window_steps,
    render_window_sweep,
    window_exchange_time,
    window_survival_probability,
    window_utility_rate,
)
from repro.sim.faults import (
    FaultModel,
    FaultTrace,
    compare_methods_under_faults,
    render_fault_comparison,
    simulate_fault_trace,
)

__all__ = [
    "GPUSpec",
    "SimConfig",
    "RTX2080TI",
    "fit_link_from_bucket_timings",
    "Engine",
    "Task",
    "partition_buckets",
    "scaled_buffer_size",
    "IterationBreakdown",
    "ClusterSpec",
    "SystemConfig",
    "build_iteration_tasks",
    "simulate_iteration",
    "simulate_iteration_records",
    "METHODS",
    "ALL_METHODS",
    "EXTENSION_METHODS",
    "TuneResult",
    "autotune_buffer_size",
    "render_gantt",
    "MemoryEstimate",
    "RTX2080TI_MEMORY_BYTES",
    "estimate_memory",
    "memory_report",
    "SteadyStateResult",
    "simulate_steady_state",
    "to_chrome_trace",
    "write_chrome_trace",
    "IterationDistribution",
    "simulate_iteration_distribution",
    "GossipWindowSpec",
    "recommend_window_steps",
    "render_window_sweep",
    "window_exchange_time",
    "window_survival_probability",
    "window_utility_rate",
    "FaultModel",
    "FaultTrace",
    "compare_methods_under_faults",
    "render_fault_comparison",
    "simulate_fault_trace",
]
