"""Steady-state multi-iteration simulation.

A single-iteration makespan overstates steady-state cost: in DDP-style
training, the communication tail of iteration ``t`` (the shallow layers'
buckets, which become ready last) overlaps iteration ``t+1``'s forward
pass of the *deep* layers, because layer ``l``'s next forward only needs
layer ``l``'s own update to have arrived. This module chains several
iterations with exactly that per-layer dependency structure — as graph
transforms over :class:`repro.sched.TaskGraph` (prefixing plus
dependency rewrites) — and reports the marginal (steady-state)
per-iteration time.

Only the per-layer-parameter dependency is modeled for S-SGD and ACP-SGD
(whose collectives are non-blocking); the original Power-SGD's blocking
two-phase pipeline serializes at the iteration boundary by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.models.spec import ModelSpec
from repro.sched import TaskGraph
from repro.sim.calibration import SimConfig
from repro.sim.engine import Engine, Task
from repro.sim.strategies import (
    ClusterSpec,
    SystemConfig,
    build_iteration_graph,
)

_PIPELINED_METHODS = ("ssgd", "acpsgd")


@dataclass(frozen=True)
class SteadyStateResult:
    """Makespans of a chained multi-iteration run.

    Attributes:
        single_iteration: makespan of one isolated iteration (s).
        steady_iteration: marginal per-iteration time in the chained run,
            ``(makespan(n) - makespan(1)) / (n - 1)``.
        iterations: chain length used.
    """

    single_iteration: float
    steady_iteration: float
    iterations: int

    @property
    def pipeline_gain(self) -> float:
        """single / steady — how much cross-iteration overlap buys."""
        if self.steady_iteration <= 0:
            return 1.0
        return self.single_iteration / self.steady_iteration


def _retag(tasks: Sequence[Task], iteration: int) -> List[Task]:
    """Clone tasks with iteration-scoped ids."""
    return list(TaskGraph(tasks).prefixed(f"it{iteration}:").tasks)


def _chain_graphs(
    per_iteration: Sequence[TaskGraph],
    comm_barrier: bool,
) -> TaskGraph:
    """Merge iteration graphs with cross-iteration dependencies.

    The first forward task of iteration ``i+1`` depends on iteration ``i``'s
    last *compute* task always (the optimizer step), and — when
    ``comm_barrier`` — on every comm task of iteration ``i`` too (a full
    synchronization, the non-pipelined baseline). Without the barrier, each
    comm task instead gates the forward task of the *latest* layer whose
    tensors it carried; here we approximate with the matching-index forward
    task, which preserves the "shallow buckets gate early forwards, deep
    buckets can lag" structure.
    """
    chained = TaskGraph()
    prev_comm_ids: List[str] = []
    prev_last_compute: Optional[str] = None
    for iteration, graph in enumerate(per_iteration):
        graph = graph.prefixed(f"it{iteration}:")
        tasks = graph.tasks
        forward = [t for t in tasks if t.tag == "forward"]
        if iteration > 0:
            extra_deps: Dict[str, Tuple[str, ...]] = {}
            first_forward = forward[0]
            deps = list(first_forward.deps)
            if prev_last_compute is not None:
                deps.append(prev_last_compute)
            if comm_barrier:
                deps.extend(prev_comm_ids)
                extra_deps[first_forward.task_id] = tuple(deps)
            else:
                extra_deps[first_forward.task_id] = tuple(deps)
                # Comm buckets gate forwards progressively: bucket k (ready
                # k-th from the end of BP, i.e. shallower layers) gates the
                # k-th forward task. Deep-layer buckets (early k) gate later
                # forwards, which start late anyway — so their comm hides.
                count = min(len(prev_comm_ids), len(forward) - 1)
                for idx in range(count):
                    fwd = forward[idx + 1]
                    comm_id = prev_comm_ids[len(prev_comm_ids) - 1 - idx]
                    extra_deps.setdefault(fwd.task_id, fwd.deps)
                    extra_deps[fwd.task_id] = extra_deps[fwd.task_id] + (comm_id,)
            graph = graph.with_deps(extra_deps)
            tasks = graph.tasks
        chained.extend(tasks)
        prev_comm_ids = [t.task_id for t in tasks if t.tag == "comm"]
        compute = [t for t in tasks if t.stream != "nic"]
        prev_last_compute = compute[-1].task_id if compute else None
    return chained


def _chain(
    per_iteration: List[List[Task]],
    comm_barrier: bool,
) -> List[Task]:
    """Task-list view of :func:`_chain_graphs` (legacy API)."""
    graphs = [TaskGraph(tasks) for tasks in per_iteration]
    return list(_chain_graphs(graphs, comm_barrier).tasks)


def _prioritize_comm(graph: TaskGraph) -> TaskGraph:
    """Priority-schedule communication by next-iteration need.

    Buckets become ready deep-to-shallow during BP, but the next forward
    consumes updates shallow-to-deep — so later-submitted buckets get
    *higher* priority (the ByteScheduler insight, the paper's ref [3]).
    """
    counter = {"comm": 0}

    def bump(task: Task) -> Task:
        if task.tag != "comm":
            return task
        task = replace(task, priority=counter["comm"])
        counter["comm"] += 1
        return task

    return graph.map_tasks(bump)


def _apply_comm_priorities(tasks: Sequence[Task]) -> List[Task]:
    """Task-list view of :func:`_prioritize_comm` (legacy API)."""
    return list(_prioritize_comm(TaskGraph(tasks)).tasks)


def build_steady_state_graph(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    iterations: int = 4,
    pipelined: Optional[bool] = None,
    priority_comm: bool = False,
) -> TaskGraph:
    """The chained multi-iteration graph ``simulate_steady_state`` runs."""
    if iterations < 2:
        raise ValueError(f"need >= 2 iterations, got {iterations}")
    if pipelined is None:
        pipelined = method in _PIPELINED_METHODS
    per_iteration = []
    for idx in range(iterations):
        graph = build_iteration_graph(
            method, model, cluster, system, sim, batch_size, rank,
            acp_parity_p=(idx % 2 == 0),
        )
        if priority_comm:
            graph = _prioritize_comm(graph)
        per_iteration.append(graph)
    return _chain_graphs(per_iteration, comm_barrier=not pipelined)


def simulate_steady_state(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    iterations: int = 4,
    pipelined: Optional[bool] = None,
    priority_comm: bool = False,
) -> SteadyStateResult:
    """Chain ``iterations`` iterations and measure the marginal time.

    Args:
        pipelined: allow cross-iteration comm/forward overlap (default:
            True for the non-blocking methods S-SGD and ACP-SGD, False
            otherwise).
        priority_comm: schedule the NIC by tensor priority instead of FIFO
            (shallow-layer buckets first), modeling a communication
            scheduler like the paper's reference [3].
    """
    if iterations < 2:
        raise ValueError(f"need >= 2 iterations, got {iterations}")
    sim = sim if sim is not None else SimConfig()
    if pipelined is None:
        pipelined = method in _PIPELINED_METHODS

    single_graph = build_iteration_graph(
        method, model, cluster, system, sim, batch_size, rank,
        acp_parity_p=True,
    )
    if priority_comm:
        single_graph = _prioritize_comm(single_graph)
    chained = build_steady_state_graph(
        method, model, cluster, system, sim, batch_size, rank,
        iterations, pipelined, priority_comm,
    )
    disciplines = {"nic": "priority"} if priority_comm else None
    engine = Engine(contention_rate=sim.contention_rate,
                    disciplines=disciplines)
    single = max(
        record.end for record in engine.run(single_graph).values()
    )
    total = max(record.end for record in engine.run(chained).values())
    steady = (total - single) / (iterations - 1)
    return SteadyStateResult(single, steady, iterations)
