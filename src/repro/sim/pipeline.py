"""Steady-state multi-iteration simulation.

A single-iteration makespan overstates steady-state cost: in DDP-style
training, the communication tail of iteration ``t`` (the shallow layers'
buckets, which become ready last) overlaps iteration ``t+1``'s forward
pass of the *deep* layers, because layer ``l``'s next forward only needs
layer ``l``'s own update to have arrived. This module chains several
iterations with exactly that per-layer dependency structure and reports
the marginal (steady-state) per-iteration time.

Only the per-layer-parameter dependency is modeled for S-SGD and ACP-SGD
(whose collectives are non-blocking); the original Power-SGD's blocking
two-phase pipeline serializes at the iteration boundary by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.models.spec import ModelSpec
from repro.sim.calibration import SimConfig
from repro.sim.engine import Engine, Task
from repro.sim.strategies import (
    ClusterSpec,
    SystemConfig,
    build_iteration_tasks,
)

_PIPELINED_METHODS = ("ssgd", "acpsgd")


@dataclass(frozen=True)
class SteadyStateResult:
    """Makespans of a chained multi-iteration run.

    Attributes:
        single_iteration: makespan of one isolated iteration (s).
        steady_iteration: marginal per-iteration time in the chained run,
            ``(makespan(n) - makespan(1)) / (n - 1)``.
        iterations: chain length used.
    """

    single_iteration: float
    steady_iteration: float
    iterations: int

    @property
    def pipeline_gain(self) -> float:
        """single / steady — how much cross-iteration overlap buys."""
        if self.steady_iteration <= 0:
            return 1.0
        return self.single_iteration / self.steady_iteration


def _retag(tasks: List[Task], iteration: int) -> List[Task]:
    """Clone tasks with iteration-scoped ids."""
    prefix = f"it{iteration}:"
    out = []
    for task in tasks:
        out.append(
            Task(
                prefix + task.task_id,
                task.stream,
                task.work,
                tuple(prefix + dep for dep in task.deps),
                tag=task.tag,
                contends=task.contends,
                priority=task.priority,
            )
        )
    return out


def _chain(
    per_iteration: List[List[Task]],
    comm_barrier: bool,
) -> List[Task]:
    """Concatenate iteration task lists with cross-iteration dependencies.

    The first forward task of iteration ``i+1`` depends on iteration ``i``'s
    last *compute* task always (the optimizer step), and — when
    ``comm_barrier`` — on every comm task of iteration ``i`` too (a full
    synchronization, the non-pipelined baseline). Without the barrier, each
    comm task instead gates the forward task of the *latest* layer whose
    tensors it carried; here we approximate with the matching-index forward
    task, which preserves the "shallow buckets gate early forwards, deep
    buckets can lag" structure.
    """
    chained: List[Task] = []
    prev_comm_ids: List[str] = []
    prev_last_compute: Optional[str] = None
    for iteration, tasks in enumerate(per_iteration):
        tasks = _retag(tasks, iteration)
        forward = [t for t in tasks if t.tag == "forward"]
        if iteration > 0:
            extra_deps: Dict[str, tuple] = {}
            first_forward = forward[0]
            deps = list(first_forward.deps)
            if prev_last_compute is not None:
                deps.append(prev_last_compute)
            if comm_barrier:
                deps.extend(prev_comm_ids)
                extra_deps[first_forward.task_id] = tuple(deps)
            else:
                extra_deps[first_forward.task_id] = tuple(deps)
                # Comm buckets gate forwards progressively: bucket k (ready
                # k-th from the end of BP, i.e. shallower layers) gates the
                # k-th forward task. Deep-layer buckets (early k) gate later
                # forwards, which start late anyway — so their comm hides.
                count = min(len(prev_comm_ids), len(forward) - 1)
                for idx in range(count):
                    fwd = forward[idx + 1]
                    comm_id = prev_comm_ids[len(prev_comm_ids) - 1 - idx]
                    extra_deps.setdefault(fwd.task_id, fwd.deps)
                    extra_deps[fwd.task_id] = extra_deps[fwd.task_id] + (comm_id,)
            tasks = [
                Task(t.task_id, t.stream, t.work,
                     extra_deps.get(t.task_id, t.deps), tag=t.tag,
                     contends=t.contends, priority=t.priority)
                if t.task_id in extra_deps else t
                for t in tasks
            ]
        chained.extend(tasks)
        prev_comm_ids = [t.task_id for t in tasks if t.tag == "comm"]
        compute = [t for t in tasks if t.stream != "nic"]
        prev_last_compute = compute[-1].task_id if compute else None
    return chained


def _apply_comm_priorities(tasks: List[Task]) -> List[Task]:
    """Priority-schedule communication by next-iteration need.

    Buckets become ready deep-to-shallow during BP, but the next forward
    consumes updates shallow-to-deep — so later-submitted buckets get
    *higher* priority (the ByteScheduler insight, the paper's ref [3]).
    """
    comm_index = 0
    out = []
    for task in tasks:
        if task.tag == "comm":
            out.append(
                Task(task.task_id, task.stream, task.work, task.deps,
                     tag=task.tag, contends=task.contends,
                     priority=comm_index)
            )
            comm_index += 1
        else:
            out.append(task)
    return out


def simulate_steady_state(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    system: Optional[SystemConfig] = None,
    sim: Optional[SimConfig] = None,
    batch_size: Optional[int] = None,
    rank: int = 4,
    iterations: int = 4,
    pipelined: Optional[bool] = None,
    priority_comm: bool = False,
) -> SteadyStateResult:
    """Chain ``iterations`` iterations and measure the marginal time.

    Args:
        pipelined: allow cross-iteration comm/forward overlap (default:
            True for the non-blocking methods S-SGD and ACP-SGD, False
            otherwise).
        priority_comm: schedule the NIC by tensor priority instead of FIFO
            (shallow-layer buckets first), modeling a communication
            scheduler like the paper's reference [3].
    """
    if iterations < 2:
        raise ValueError(f"need >= 2 iterations, got {iterations}")
    sim = sim if sim is not None else SimConfig()
    if pipelined is None:
        pipelined = method in _PIPELINED_METHODS

    per_iteration = []
    for idx in range(iterations):
        parity = idx % 2 == 0
        tasks = build_iteration_tasks(
            method, model, cluster, system, sim, batch_size, rank,
            acp_parity_p=parity,
        )
        if priority_comm:
            tasks = _apply_comm_priorities(tasks)
        per_iteration.append(tasks)
    disciplines = {"nic": "priority"} if priority_comm else None
    engine = Engine(contention_rate=sim.contention_rate,
                    disciplines=disciplines)
    single = max(
        record.end for record in engine.run(per_iteration[0]).values()
    )
    chained = _chain(per_iteration, comm_barrier=not pipelined)
    total = max(record.end for record in engine.run(chained).values())
    steady = (total - single) / (iterations - 1)
    return SteadyStateResult(single, steady, iterations)
