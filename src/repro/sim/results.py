"""Iteration-time breakdown accounting.

The paper's metric (§III-A): iteration time decomposed into FF&BP
computation, compression/decompression, and **non-overlapped**
communication. We derive the same stacked decomposition from the engine's
task records by sweeping the timeline:

- a moment counts as *communication (non-overlapped)* when only the NIC is
  busy;
- it counts as *compression* when a compression task is running and no
  FF/BP task is (compression hidden behind BP is charged to FF&BP, exactly
  as a stacked wall-clock bar would show);
- everything else busy counts as *FF&BP* (including slowdowns inflicted on
  BP by contention — the paper attributes those to computation time too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.engine import TaskRecord


@dataclass(frozen=True)
class IterationBreakdown:
    """One simulated iteration's timing summary (seconds)."""

    total: float
    ffbp: float
    compression: float
    comm_nonoverlap: float

    @property
    def milliseconds(self) -> Tuple[float, float, float, float]:
        """(total, ffbp, compression, comm) in ms, for paper-style output."""
        return (
            self.total * 1e3,
            self.ffbp * 1e3,
            self.compression * 1e3,
            self.comm_nonoverlap * 1e3,
        )

    def render(self, label: str = "") -> str:
        """One-line summary like the paper's breakdown bars."""
        total, ffbp, comp, comm = self.milliseconds
        prefix = f"{label}: " if label else ""
        return (
            f"{prefix}total={total:.1f}ms  ff&bp={ffbp:.1f}ms  "
            f"compress={comp:.1f}ms  comm(non-overlap)={comm:.1f}ms"
        )


def breakdown_from_records(records: Dict[str, TaskRecord]) -> IterationBreakdown:
    """Sweep task records into the paper's three-way decomposition."""
    if not records:
        return IterationBreakdown(0.0, 0.0, 0.0, 0.0)
    events: List[Tuple[float, int, str]] = []
    for record in records.values():
        if record.end <= record.start:
            continue
        tag = record.task.tag
        events.append((record.start, +1, tag))
        events.append((record.end, -1, tag))
    if not events:
        return IterationBreakdown(0.0, 0.0, 0.0, 0.0)
    events.sort(key=lambda item: (item[0], -item[1]))

    counts = {"forward": 0, "backward": 0, "compression": 0, "comm": 0, "other": 0}
    total_end = max(record.end for record in records.values())
    ffbp = compression = comm = 0.0
    prev_time = 0.0
    idx = 0
    while idx < len(events):
        time = events[idx][0]
        span = time - prev_time
        if span > 0:
            compute_busy = counts["forward"] or counts["backward"] or counts["other"]
            if compute_busy:
                ffbp += span
            elif counts["compression"]:
                compression += span
            elif counts["comm"]:
                comm += span
        while idx < len(events) and events[idx][0] == time:
            _, delta, tag = events[idx]
            counts[tag] += delta
            idx += 1
        prev_time = time
    return IterationBreakdown(
        total=total_end, ffbp=ffbp, compression=compression, comm_nonoverlap=comm
    )
