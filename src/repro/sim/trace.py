"""Chrome-trace export of simulated iteration timelines.

Converts the engine's task records into the Trace Event Format that
``chrome://tracing`` / Perfetto render, with one row per resource
(``gpu_main`` / ``gpu_side`` / ``nic``). Makes the WFBP overlap, tensor
fusion batching and Power-SGD* contention visually inspectable — the
pictures Figs. 1 and 4 of the paper draw by hand.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.sim.engine import GPU_MAIN, GPU_SIDE, NIC, TaskRecord

_STREAM_ROWS = {GPU_MAIN: 0, GPU_SIDE: 1, NIC: 2}
_TAG_COLORS = {
    "forward": "good",
    "backward": "thread_state_running",
    "compression": "thread_state_iowait",
    "comm": "rail_response",
    "other": "generic_work",
}


def to_chrome_trace(records: Dict[str, TaskRecord]) -> dict:
    """Convert task records into a Trace Event Format document."""
    events: List[dict] = []
    for record in records.values():
        if record.end <= record.start:
            continue
        task = record.task
        events.append({
            "name": task.task_id,
            "cat": task.tag,
            "ph": "X",  # complete event
            "ts": record.start * 1e6,  # microseconds
            "dur": record.duration * 1e6,
            "pid": 0,
            "tid": _STREAM_ROWS.get(task.stream, 9),
            "cname": _TAG_COLORS.get(task.tag, "generic_work"),
            "args": {"tag": task.tag, "stream": task.stream,
                     "contends": task.contends},
        })
    events.sort(key=lambda e: e["ts"])
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": row,
         "args": {"name": stream}}
        for stream, row in _STREAM_ROWS.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Dict[str, TaskRecord], path: str) -> None:
    """Write records as a ``chrome://tracing`` JSON file."""
    document = to_chrome_trace(records)
    with open(path, "w") as handle:
        json.dump(document, handle)
