"""ASCII Gantt rendering of simulated timelines.

Textual counterpart of the paper's Fig. 1 / Fig. 4 schedule illustrations:
one row per resource, characters bucketed by time, letters keyed to the
task category. Lets the README / experiment output *show* WFBP overlap and
Power-SGD*'s contention without any plotting dependency.

Rows are derived from the records themselves, so any resource set works —
the legacy ``gpu``/``side``/``nic`` trio keeps its order and labels, and
arbitrary resources from the :mod:`repro.sched` core (per-node links of a
hierarchical all-reduce, say) get one row each in first-use order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.engine import GPU_MAIN, GPU_SIDE, NIC, TaskRecord

_LEGACY_ORDER = (GPU_MAIN, GPU_SIDE, NIC)
_LEGACY_LABELS = {GPU_MAIN: "gpu", GPU_SIDE: "side", NIC: "nic"}
_TAG_CHARS = {
    "forward": "F",
    "backward": "B",
    "compression": "C",
    "comm": "=",
    "other": "o",
}


def _row_streams(records: Dict[str, TaskRecord]) -> List[str]:
    """Streams to render: legacy trio first (side only when busy), then
    any other resources in first-use order."""
    present: Dict[str, bool] = {}  # stream -> has positive-duration work
    for record in records.values():
        busy = present.get(record.task.stream, False)
        present[record.task.stream] = busy or record.duration > 0
    rows: List[str] = []
    for stream in _LEGACY_ORDER:
        if stream not in present:
            continue
        if stream == GPU_SIDE and not present[stream]:
            continue  # hide the side stream when unused
        rows.append(stream)
    for record in records.values():
        stream = record.task.stream
        if stream not in _LEGACY_ORDER and stream not in rows:
            rows.append(stream)
    return rows


def render_gantt(records: Dict[str, TaskRecord], width: int = 78) -> str:
    """Render task records as an ASCII Gantt chart.

    Args:
        records: engine output.
        width: number of time columns.

    Returns:
        A multi-line chart; the legend line maps characters to categories.
        Where several tasks share a cell, the busier category wins.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not records:
        return "(empty timeline)"
    end = max(record.end for record in records.values())
    if end <= 0:
        return "(empty timeline)"
    cell = end / width

    streams = _row_streams(records)
    labels = {
        stream: _LEGACY_LABELS.get(stream, stream) for stream in streams
    }
    label_w = max(4, max((len(label) for label in labels.values()), default=4))

    lines: List[str] = []
    for stream in streams:
        stream_records = [
            r for r in records.values() if r.task.stream == stream and r.duration > 0
        ]
        # Accumulate busy time per cell per tag.
        occupancy = [dict() for _ in range(width)]
        for record in stream_records:
            first = int(record.start / cell)
            last = min(width - 1, int(record.end / cell - 1e-12))
            for idx in range(first, last + 1):
                lo = max(record.start, idx * cell)
                hi = min(record.end, (idx + 1) * cell)
                if hi > lo:
                    tag = record.task.tag
                    occupancy[idx][tag] = occupancy[idx].get(tag, 0.0) + (hi - lo)
        row = []
        for cell_occ in occupancy:
            if not cell_occ:
                row.append(" ")
            else:
                tag = max(cell_occ, key=cell_occ.get)
                row.append(_TAG_CHARS.get(tag, "?"))
        lines.append(f"{labels[stream]:>{label_w}} |{''.join(row)}|")
    lines.append(
        f"{'':>{label_w}}  0ms{'':{max(1, width - 14)}}{end * 1e3:.0f}ms"
    )
    lines.append(
        " " * (label_w + 2)
        + "F=forward B=backward C=compress ==comm (busiest per cell)"
    )
    return "\n".join(lines)
