"""Buffer-size auto-tuning.

The paper notes (§IV-B) that "buffer size can be automatically tuned using
e.g. Bayesian optimization" but leaves it as future work, relying on the
scaled 25MB default. This module implements that extension with a
deterministic coarse-to-fine search over the simulator: a log-spaced sweep
followed by local refinement around the best coarse candidate. On the
simulator the objective is noiseless, so this matches what a BO loop would
converge to at a fraction of the complexity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.models.spec import ModelSpec
from repro.sim.calibration import SimConfig
from repro.sim.strategies import ClusterSpec, SystemConfig, simulate_iteration

MB = 1024.0 * 1024.0
_DEFAULT_COARSE_MB = (0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0)


@dataclass
class TuneResult:
    """Outcome of one auto-tuning run.

    Attributes:
        best_buffer_bytes: the winning buffer size.
        best_time: simulated iteration seconds at the winner.
        evaluated: every (buffer_bytes -> iteration seconds) probed.
    """

    best_buffer_bytes: float
    best_time: float
    evaluated: Dict[float, float] = field(default_factory=dict)

    @property
    def best_buffer_mb(self) -> float:
        return self.best_buffer_bytes / MB

    def improvement_over(self, buffer_bytes: float) -> float:
        """Speedup of the tuned buffer vs a reference size (probing it if
        needed is the caller's job — KeyError otherwise)."""
        return self.evaluated[buffer_bytes] / self.best_time

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (float dict keys become ``repr`` strings).

        ``repr`` of a float is shortest-round-trip in every supported
        Python, so ``from_dict(to_dict(r)) == r`` bit-exactly — the
        property the planning service's byte-identical-payload contract
        relies on.
        """
        return {
            "best_buffer_bytes": float(self.best_buffer_bytes),
            "best_time": float(self.best_time),
            "evaluated": {
                repr(float(k)): float(v) for k, v in sorted(self.evaluated.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "TuneResult":
        """Inverse of :meth:`to_dict`."""
        evaluated = {
            float(k): float(v) for k, v in doc["evaluated"].items()  # type: ignore[union-attr]
        }
        return cls(
            best_buffer_bytes=float(doc["best_buffer_bytes"]),  # type: ignore[arg-type]
            best_time=float(doc["best_time"]),  # type: ignore[arg-type]
            evaluated=evaluated,
        )


def autotune_buffer_size(
    method: str,
    model: ModelSpec,
    cluster: Optional[ClusterSpec] = None,
    sim: Optional[SimConfig] = None,
    rank: int = 4,
    batch_size: Optional[int] = None,
    coarse_mb: Sequence[float] = _DEFAULT_COARSE_MB,
    refine_rounds: int = 3,
) -> TuneResult:
    """Find the buffer size minimizing simulated iteration time.

    Coarse log-spaced sweep, then ``refine_rounds`` of bisection between
    the best point's neighbours.
    """
    if not coarse_mb:
        raise ValueError("need at least one coarse candidate")
    candidates = sorted(float(c) * MB for c in coarse_mb)
    evaluated: Dict[float, float] = {}

    def probe(buffer_bytes: float) -> float:
        buffer_bytes = max(buffer_bytes, 1.0)
        if buffer_bytes not in evaluated:
            config = SystemConfig(
                wfbp=True, tensor_fusion=True, buffer_bytes=buffer_bytes
            )
            evaluated[buffer_bytes] = simulate_iteration(
                method, model, cluster=cluster, system=config, sim=sim,
                rank=rank, batch_size=batch_size,
            ).total
        return evaluated[buffer_bytes]

    for candidate in candidates:
        probe(candidate)

    for _ in range(refine_rounds):
        ordered = sorted(evaluated)
        best = min(ordered, key=lambda b: evaluated[b])
        idx = ordered.index(best)
        left = ordered[idx - 1] if idx > 0 else best / 2
        right = ordered[idx + 1] if idx + 1 < len(ordered) else best * 2
        probe((left * best) ** 0.5)
        probe((best * right) ** 0.5)

    best = min(evaluated, key=lambda b: evaluated[b])
    return TuneResult(
        best_buffer_bytes=best, best_time=evaluated[best], evaluated=evaluated
    )
