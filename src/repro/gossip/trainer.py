"""Windowed, store-mediated gossip training with Byzantine peers.

This is the open-membership counterpart of
:class:`~repro.train.trainer.DataParallelTrainer`: there is no process
group, no lockstep collective, and no trusted roster. Each peer

1. runs ``local_steps`` SGD passes on its own data stream, folding the
   lr-scaled gradients into a local *momentum* buffer (the templar-style
   scheme: ``m <- decay * m + lr * g``);
2. top-k compresses the flat momentum, subtracts the transmitted part
   (error feedback — the untransmitted mass stays in the buffer and is
   retried next window), and publishes the sparse update as a
   CRC-stamped, self-describing payload
   (:func:`~repro.compression.payload.pack_payload`) to the shared
   :class:`~repro.gossip.store.UpdateStore` under ``(window, peer_id)``;
3. fetches whatever the store holds for the closing window, screens every
   contribution through its own :class:`~repro.gossip.scorer.PeerScorer`
   (integrity, staleness, norm plausibility, direction), and applies the
   staleness-weighted trust-weighted mean of the survivors to its model.

Honest peers start from the same seeded init and see the same store
contents, so — the scorer being deterministic — their models evolve
bit-identically *without any synchronization primitive*. Adversarial
behaviour is injected at publish time from the run's seeded
:class:`~repro.faults.plan.FaultPlan` (``peer_faults``), and churn
(``permanent`` / ``recoveries`` / ``joins`` with ``call_index`` read as a
window index) flows through the donor-less admission path
(:mod:`repro.elastic.open_admission`): joiners and returning peers replay
the retained store windows instead of receiving a state broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compression.payload import (
    PayloadFormatError,
    pack_payload,
    unpack_payload,
)
from repro.compression.topk import exact_topk_mask
from repro.elastic.membership import joiner_rng
from repro.elastic.open_admission import allocate_peer_index, catch_up_plan
from repro.faults.plan import FaultPlan, Join
from repro.gossip.faulty import StoreUnavailableError
from repro.gossip.scorer import Contribution, PeerScorer, ScorerConfig
from repro.gossip.store import InMemoryStore, UpdateStore
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.train.datasets import ArrayDataset

#: Seed-tuple sentinel for publish-time adversarial draws (bit flips).
_PEER_FAULT_STREAM = 2**31 - 5


@dataclass(frozen=True)
class GossipConfig:
    """Hyper-parameters of the windowed exchange.

    Attributes:
        local_steps: SGD passes a peer runs per window before publishing.
        batch_size: samples per local pass.
        lr: learning rate folded into the momentum buffer.
        momentum_decay: per-step momentum decay (templar's
            ``momentum_decay``).
        compression_ratio: fraction of momentum coordinates published
            (top-k over the flat buffer).
        store_retention: windows kept in the store (``None`` = keep all,
            which lets joiners replay to bit-identity; a finite retention
            bounds the footprint but makes late joins approximate).
        scorer: screening thresholds and trust dynamics.
    """

    local_steps: int = 2
    batch_size: int = 16
    lr: float = 0.05
    momentum_decay: float = 0.9
    compression_ratio: float = 0.05
    store_retention: Optional[int] = None
    scorer: ScorerConfig = field(default_factory=ScorerConfig)

    def __post_init__(self) -> None:
        if self.local_steps < 1:
            raise ValueError(f"local_steps must be >= 1, got {self.local_steps}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.lr <= 0:
            raise ValueError(f"lr must be > 0, got {self.lr}")
        if not 0.0 <= self.momentum_decay < 1.0:
            raise ValueError(
                f"momentum_decay must be in [0, 1), got {self.momentum_decay}"
            )
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError(
                f"compression_ratio must be in (0, 1], "
                f"got {self.compression_ratio}"
            )
        if self.store_retention is not None and self.store_retention < 1:
            raise ValueError(
                f"store_retention must be >= 1 or None, "
                f"got {self.store_retention}"
            )


@dataclass(frozen=True)
class FlatLayout:
    """Flattened parameter geometry shared by every peer of a run."""

    names: Tuple[str, ...]
    shapes: Tuple[Tuple[int, ...], ...]
    offsets: Tuple[int, ...]
    total: int

    @classmethod
    def from_model(cls, model: Module) -> "FlatLayout":
        names: List[str] = []
        shapes: List[Tuple[int, ...]] = []
        offsets: List[int] = []
        cursor = 0
        for name, param in model.named_parameters():
            names.append(name)
            shapes.append(tuple(param.data.shape))
            offsets.append(cursor)
            cursor += int(np.prod(param.data.shape))
        return cls(tuple(names), tuple(shapes), tuple(offsets), cursor)

    def flatten(self, tensors: Dict[str, np.ndarray]) -> np.ndarray:
        flat = np.zeros(self.total, dtype=np.float64)
        for name, shape, offset in zip(self.names, self.shapes, self.offsets):
            size = int(np.prod(shape))
            flat[offset : offset + size] = tensors[name].reshape(-1)
        return flat

    def unflatten(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name, shape, offset in zip(self.names, self.shapes, self.offsets):
            size = int(np.prod(shape))
            out[name] = flat[offset : offset + size].reshape(shape)
        return out


def decode_update(
    peer_id: str, blob: bytes, num_elements: int
) -> Contribution:
    """Verify and densify one fetched payload into a :class:`Contribution`.

    Never raises: every failure mode is folded into ``decode_error`` with
    the offence class the scorer should book (``"corrupt-payload"`` for
    integrity failures, ``"metadata"`` for geometry lies).
    """
    try:
        arrays, meta = unpack_payload(blob)
    except PayloadFormatError as exc:
        return Contribution(peer_id, decode_error=f"corrupt-payload: {exc}")
    indices = arrays.get("indices")
    values = arrays.get("values")
    if indices is None or values is None:
        return Contribution(
            peer_id, decode_error="metadata: missing indices/values arrays"
        )
    window = meta.get("window")
    declared = meta.get("num_elements")
    if not isinstance(window, int) or not isinstance(declared, int):
        return Contribution(
            peer_id, decode_error="metadata: missing window/num_elements"
        )
    if declared != num_elements:
        return Contribution(
            peer_id,
            decode_error=(
                f"metadata: declares {declared} elements, "
                f"model has {num_elements}"
            ),
        )
    if (indices.ndim != 1 or values.ndim != 1
            or indices.shape != values.shape
            or indices.dtype.kind not in "iu"
            or values.dtype.kind != "f"):
        return Contribution(
            peer_id, decode_error="metadata: malformed sparse arrays"
        )
    if indices.size and (
        int(indices.min()) < 0 or int(indices.max()) >= num_elements
    ):
        return Contribution(
            peer_id, decode_error="metadata: indices out of range"
        )
    dense = np.zeros(num_elements, dtype=np.float64)
    np.add.at(dense, indices.astype(np.int64), values.astype(np.float64))
    return Contribution(peer_id, update=dense, stamped_window=window)


class GossipPeer:
    """One participant: model replica, momentum buffer, trust state."""

    def __init__(
        self,
        peer_id: str,
        index: int,
        model: Module,
        layout: FlatLayout,
        config: GossipConfig,
        data: ArrayDataset,
        seed: int,
    ):
        self.peer_id = peer_id
        self.index = index
        self.model = model
        self.layout = layout
        self.config = config
        self.data = data
        # Same seed tree as the closed-world trainer's joiners: the
        # stream is a pure function of (seed, index), independent of when
        # the peer joined.
        self.rng = joiner_rng(seed, index)
        self.loss_fn = CrossEntropyLoss()
        self.scorer = PeerScorer(config.scorer)
        self.momentum = np.zeros(layout.total, dtype=np.float64)
        self.joined_window = 0
        #: Next window this peer still needs to score & apply. Advanced by
        #: the live loop and by store replay; never rewound, so every
        #: (scorer, window) pair is screened exactly once even across a
        #: departure-and-return.
        self.next_window = 0
        self.losses: List[float] = []

    # -- local compute -------------------------------------------------
    def local_window(self) -> float:
        """Run the window's local passes; returns the mean local loss."""
        cfg = self.config
        losses = []
        for _ in range(cfg.local_steps):
            inputs, labels = self.data.batch(self.rng, cfg.batch_size)
            self.model.zero_grad()
            logits = self.model(inputs)
            losses.append(self.loss_fn(logits, labels))
            self.model.backward(self.loss_fn.backward())
            grads: Dict[str, np.ndarray] = {}
            for name, param in self.model.named_parameters():
                if param.grad is None:
                    raise RuntimeError(f"parameter {name!r} got no gradient")
                grads[name] = param.grad
            self.momentum *= cfg.momentum_decay
            self.momentum += cfg.lr * self.layout.flatten(grads)
        loss = float(np.mean(losses))
        self.losses.append(loss)
        return loss

    def make_update(self, window: int) -> bytes:
        """Top-k compress the momentum; subtract the transmitted part.

        The untransmitted mass stays in the buffer (error feedback), so
        coordinates below this window's cut keep accumulating until they
        earn a slot — templar's ``prepare_gradient_dict`` scheme on a
        flat buffer.
        """
        cfg = self.config
        k = max(1, int(round(cfg.compression_ratio * self.layout.total)))
        indices = np.sort(exact_topk_mask(self.momentum, k))
        values = self.momentum[indices]
        self.momentum[indices] = 0.0
        meta = {
            "peer": self.peer_id,
            "window": int(window),
            "num_elements": int(self.layout.total),
            "norm": float(np.linalg.norm(values)),
        }
        return pack_payload(
            {"indices": indices.astype(np.int64), "values": values}, meta
        )

    def apply(self, aggregated: np.ndarray) -> None:
        """Descend along the aggregated (already lr-scaled) update."""
        for name, chunk in self.layout.unflatten(aggregated).items():
            param = dict(self.model.named_parameters())[name]
            param.data = param.data - chunk

    def state_vector(self) -> np.ndarray:
        return self.model.state_vector()


@dataclass
class GossipReport:
    """Outcome of one gossip run."""

    windows: int
    window_losses: List[float] = field(default_factory=list)
    quarantined: Dict[str, int] = field(default_factory=dict)
    offence_counts: Dict[str, int] = field(default_factory=dict)
    membership: List[str] = field(default_factory=list)
    final_accuracy: float = 0.0

    def render(self) -> str:
        lines = [
            f"windows run           {self.windows}",
            f"final honest accuracy {self.final_accuracy:.1%}",
        ]
        if self.window_losses:
            lines.append(
                f"honest loss           {self.window_losses[0]:.3f} -> "
                f"{self.window_losses[-1]:.3f}"
            )
        if self.quarantined:
            quarantines = ", ".join(
                f"{peer}@w{window}"
                for peer, window in sorted(self.quarantined.items())
            )
            lines.append(f"quarantined           {quarantines}")
        else:
            lines.append("quarantined           none")
        if self.offence_counts:
            offences = ", ".join(
                f"{kind}:{count}"
                for kind, count in sorted(self.offence_counts.items())
            )
            lines.append(f"offences              {offences}")
        for event in self.membership:
            lines.append(f"membership            {event}")
        return "\n".join(lines)


class GossipCluster:
    """Drives every peer of a seeded gossip run window by window.

    The cluster is a *simulation harness*, not a coordinator: peers only
    ever interact through the store, and the per-peer logic
    (:class:`GossipPeer` + its scorer) never reads another peer's state.
    Adversarial publish-time mutations and churn come from ``plan``.

    Args:
        model_factory: zero-argument callable building one model replica;
            must be deterministic (same weights every call) — founders
            and joiners alike start from this state.
        train_data / test_data: the shared task. Peers sample the full
            training set with per-peer seeded streams (open membership
            has no shard coordination).
        config: window hyper-parameters.
        plan: seeded fault plan; ``peer_faults`` drive adversarial
            publishing, ``permanent`` / ``recoveries`` / ``joins``
            (``call_index`` = window) drive churn.
        peers: founding roster size.
        store: defaults to a fresh :class:`InMemoryStore`.
        seed: root seed for the per-peer data streams.
    """

    def __init__(
        self,
        model_factory,
        train_data: ArrayDataset,
        test_data: ArrayDataset,
        config: Optional[GossipConfig] = None,
        plan: Optional[FaultPlan] = None,
        peers: int = 4,
        store: Optional[UpdateStore] = None,
        seed: int = 0,
    ):
        if peers < 2:
            raise ValueError(f"need >= 2 founding peers, got {peers}")
        self.model_factory = model_factory
        self.train_data = train_data
        self.test_data = test_data
        self.config = config if config is not None else GossipConfig()
        self.plan = plan if plan is not None else FaultPlan()
        self.store = store if store is not None else InMemoryStore()
        self.seed = seed
        probe = model_factory()
        self.layout = FlatLayout.from_model(probe)
        self.peers: Dict[str, GossipPeer] = {}
        self._active: Dict[str, bool] = {}
        self._membership_events: List[str] = []
        self._decoded: Dict[int, List[Contribution]] = {}
        self._window = 0
        for index in range(peers):
            self._spawn_peer(index, window=0)
        unseen = [
            fault.rank for fault in self.plan.peer_faults if fault.rank >= peers
        ]
        if unseen:
            raise ValueError(
                f"peer_faults name ranks {sorted(set(unseen))} outside the "
                f"founding roster of {peers}"
            )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _peer_id(self, index: int) -> str:
        return f"peer-{index:03d}"

    def _spawn_peer(self, index: int, window: int) -> GossipPeer:
        peer = GossipPeer(
            self._peer_id(index),
            index,
            self.model_factory(),
            self.layout,
            self.config,
            self.train_data,
            self.seed,
        )
        peer.joined_window = window
        self.peers[peer.peer_id] = peer
        self._active[peer.peer_id] = True
        return peer

    def _catch_up(self, peer: GossipPeer, upto_window: int) -> bool:
        """Replay retained store windows into a (re)joining peer.

        Returns True when the replay was gap-free back to the peer's last
        scored window (``next_window``) — a fresh joiner with a full store
        lands bit-identical to the veterans, with no donor broadcast. A
        returning peer resumes from where it left off, so every
        (scorer, window) pair is screened exactly once.
        """
        schedule = catch_up_plan(self.store.windows(), upto_window)
        missing = [
            window for window in schedule.windows
            if window >= peer.next_window
        ]
        complete = missing == list(range(peer.next_window, upto_window))
        for window in missing:
            contributions = self._decode_window(window)
            weights = peer.scorer.weigh_window(window, contributions)
            aggregated = _weighted_mean(
                contributions, weights, self.layout.total
            )
            if aggregated is not None:
                peer.apply(aggregated)
            peer.next_window = window + 1
        peer.next_window = max(peer.next_window, upto_window)
        return complete

    def _commit_membership(self, window: int) -> None:
        """Apply churn due at ``window``: departures, returns, joins."""
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            down = self.plan.permanently_down(peer.index, window)
            if down and self._active[peer_id]:
                self._active[peer_id] = False
                self._membership_events.append(
                    f"window {window}: {peer_id} departed"
                )
            elif not down and not self._active[peer_id]:
                complete = self._catch_up(peer, window)
                self._active[peer_id] = True
                self._membership_events.append(
                    f"window {window}: {peer_id} returned "
                    f"({'complete' if complete else 'partial'} store replay)"
                )
        for event in self.plan.membership_events():
            if isinstance(event, Join) and event.call_index == window:
                index = allocate_peer_index(
                    [peer.index for peer in self.peers.values()]
                )
                peer = self._spawn_peer(index, window)
                complete = self._catch_up(peer, window)
                self._membership_events.append(
                    f"window {window}: {peer.peer_id} joined "
                    f"({'complete' if complete else 'partial'} store replay)"
                )

    def active_peers(self) -> List[GossipPeer]:
        return [
            self.peers[peer_id]
            for peer_id in sorted(self.peers)
            if self._active[peer_id]
        ]

    def honest_peers(self) -> List[GossipPeer]:
        adversarial = self.plan.adversarial_ranks()
        return [
            peer for peer in self.active_peers()
            if peer.index not in adversarial
        ]

    # ------------------------------------------------------------------
    # The window loop
    # ------------------------------------------------------------------
    def _publish(self, peer: GossipPeer, window: int) -> None:
        """Honest publish, bent by any scheduled peer faults."""
        faults = {
            fault.kind: fault
            for fault in self.plan.peer_faults_at(peer.index, window)
        }
        if "free-rider" in faults:
            # Skips its local compute entirely and uploads a zero update.
            blob = pack_payload(
                {
                    "indices": np.zeros(0, dtype=np.int64),
                    "values": np.zeros(0, dtype=np.float64),
                },
                {
                    "peer": peer.peer_id,
                    "window": int(window),
                    "num_elements": int(self.layout.total),
                    "norm": 0.0,
                },
            )
            self.store.publish(window, peer.peer_id, blob)
            return
        peer.local_window()
        if "lagging" in faults:
            lag = faults["lagging"].lag
            stale_window = window - lag
            if stale_window < peer.joined_window:
                return  # nothing old enough to upload yet
            # A lagging pipeline: the upload arrives in the live window
            # but is stamped with the window it was computed for, `lag`
            # windows back — the stamp is what the staleness screen sees.
            blob = peer.make_update(stale_window)
            self.store.publish(window, peer.peer_id, blob)
            return
        blob = peer.make_update(window)
        if "sign-flip" in faults:
            arrays, meta = unpack_payload(blob)
            arrays["values"] = -arrays["values"]
            blob = pack_payload(arrays, meta)
        if "corrupt-payload" in faults:
            rng = np.random.default_rng(
                (self.plan.seed, window, peer.index, _PEER_FAULT_STREAM)
            )
            raw = bytearray(blob)
            bit = int(rng.integers(len(raw) * 8))
            raw[bit // 8] ^= 1 << (bit % 8)
            blob = bytes(raw)
        self.store.publish(window, peer.peer_id, blob)

    def _decode_window(self, window: int) -> List[Contribution]:
        """Decode (once) everything the store holds for ``window``.

        A store outage (:class:`~repro.gossip.faulty.StoreUnavailableError`)
        decodes as an *empty* window — every peer simply coasts on its
        local momentum, exactly as if nobody had published — rather than
        killing the run. The empty decode is cached: within one window
        the store's fate is a single fact, not a per-peer retry.
        """
        if window not in self._decoded:
            try:
                fetched = self.store.fetch(window)
            except StoreUnavailableError:
                fetched = {}
            self._decoded[window] = [
                decode_update(peer_id, blob, self.layout.total)
                for peer_id, blob in fetched.items()
            ]
        return self._decoded[window]

    def run_window(self) -> float:
        """One full window: churn, publish, screen, aggregate, apply.

        Returns the mean honest local loss of the window.
        """
        window = self._window
        self._window += 1
        self._commit_membership(window)
        active = self.active_peers()
        if not active:
            raise RuntimeError(f"window {window}: no active peer left")
        for peer in active:
            try:
                self._publish(peer, window)
            except StoreUnavailableError:
                # The PUT failed; the peer's local step still happened.
                # Other peers see an absence — the same face a dropped
                # publish or a churned-out peer shows.
                continue
        contributions = self._decode_window(window)
        for peer in active:
            weights = peer.scorer.weigh_window(window, contributions)
            aggregated = _weighted_mean(
                contributions, weights, self.layout.total
            )
            if aggregated is not None:
                peer.apply(aggregated)
            peer.next_window = window + 1
        if self.config.store_retention is not None:
            horizon = window + 1 - self.config.store_retention
            self.store.gc(horizon)
            for stale in [w for w in self._decoded if w < horizon]:
                del self._decoded[stale]
        honest = self.honest_peers()
        pool = honest if honest else active
        losses = [peer.losses[-1] for peer in pool if peer.losses]
        return float(np.mean(losses)) if losses else float("nan")

    def run(self, windows: int) -> GossipReport:
        """Run ``windows`` windows; returns the accounting report."""
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        report = GossipReport(windows=windows)
        for _ in range(windows):
            report.window_losses.append(self.run_window())
        reference = self.reference_peer()
        report.final_accuracy = evaluate(reference.model, self.test_data)
        scorer = reference.scorer
        for peer_id in scorer.quarantined_peers():
            record = scorer.records[peer_id]
            report.quarantined[peer_id] = int(record.quarantined_window)
        for offence in scorer.offences:
            report.offence_counts[offence.kind] = (
                report.offence_counts.get(offence.kind, 0) + 1
            )
        report.membership = list(self._membership_events)
        return report

    def reference_peer(self) -> GossipPeer:
        """Lowest-index active honest peer (the report's viewpoint)."""
        honest = self.honest_peers()
        if honest:
            return honest[0]
        active = self.active_peers()
        if not active:
            raise RuntimeError("no active peer to report from")
        return active[0]


def _weighted_mean(
    contributions: List[Contribution],
    weights: Dict[str, float],
    num_elements: int,
) -> Optional[np.ndarray]:
    """Staleness/trust-weighted mean of the surviving dense updates."""
    total_weight = 0.0
    accumulator = np.zeros(num_elements, dtype=np.float64)
    for contribution in contributions:
        weight = weights.get(contribution.peer_id, 0.0)
        if weight <= 0.0 or contribution.update is None:
            continue
        accumulator += weight * contribution.update
        total_weight += weight
    if total_weight <= 0.0:
        return None
    return accumulator / total_weight


def evaluate(
    model: Module, data: ArrayDataset, batch_size: int = 256
) -> float:
    """Test-set accuracy of one peer's model."""
    model.eval()
    correct = 0
    total = 0
    for start in range(0, len(data), batch_size):
        inputs = data.inputs[start : start + batch_size]
        labels = data.labels[start : start + batch_size]
        logits = model(inputs)
        correct += int((logits.argmax(axis=1) == labels).sum())
        total += len(labels)
    model.train()
    return correct / max(1, total)
