"""Windowed update stores: the shared medium of the gossip mode.

Open-membership training has no process group — peers never talk to each
other directly. Instead every peer publishes its compressed update for
step window ``w`` into a shared store under ``(window, peer_id)``, and
aggregates whatever the store holds for that window when the window
closes. The store is therefore the *entire* communication fabric: it
needs no membership list, tolerates peers appearing and vanishing at any
time, and never interprets the blobs it carries (verification is the
fetcher's job — see :mod:`repro.gossip.scorer`).

Two backends behind one interface:

- :class:`InMemoryStore` — a dict of dicts; the deterministic backend the
  tests, the simulator-coupled runs, and the CI replay checks use.
- :class:`FilesystemStore` — one directory per window, one file per peer,
  written atomically (temp file + ``os.replace``) so a concurrent reader
  can never observe a half-written blob. This is the backend for real
  multi-process runs sharing a disk (or a FUSE-mounted object store).

Both return fetched windows as mappings ordered by peer id, so iteration
order — and everything derived from it — is deterministic.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
from abc import ABC, abstractmethod
from typing import Dict, List


class UpdateStore(ABC):
    """Shared windowed blob store: publish/fetch compressed peer updates."""

    @abstractmethod
    def publish(self, window: int, peer_id: str, blob: bytes) -> None:
        """Store ``blob`` as ``peer_id``'s update for ``window``.

        Re-publishing overwrites: the latest write wins, like an object
        store PUT.
        """

    @abstractmethod
    def fetch(self, window: int) -> Dict[str, bytes]:
        """All updates published for ``window``, keyed and ordered by peer id."""

    @abstractmethod
    def windows(self) -> List[int]:
        """Window indices with at least one published update, ascending."""

    @abstractmethod
    def gc(self, keep_from: int) -> int:
        """Drop every window strictly older than ``keep_from``.

        Returns the number of windows removed. Garbage collection bounds
        the store's footprint but also bounds how far back a brand-new
        peer can catch up (see ``docs/fault_tolerance.md``).
        """

    def peers(self, window: int) -> List[str]:
        """Peer ids with an update published for ``window``, sorted."""
        return list(self.fetch(window).keys())


def _check_publish(window: int, peer_id: str, blob: bytes) -> None:
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    if not peer_id:
        raise ValueError("peer_id must be non-empty")
    if not isinstance(blob, (bytes, bytearray)):
        raise TypeError(f"blob must be bytes, got {type(blob).__name__}")


class InMemoryStore(UpdateStore):
    """Dict-backed store for single-process runs, tests, and simulation."""

    def __init__(self) -> None:
        self._windows: Dict[int, Dict[str, bytes]] = {}

    def publish(self, window: int, peer_id: str, blob: bytes) -> None:
        _check_publish(window, peer_id, blob)
        self._windows.setdefault(window, {})[peer_id] = bytes(blob)

    def fetch(self, window: int) -> Dict[str, bytes]:
        slot = self._windows.get(window, {})
        return {peer: slot[peer] for peer in sorted(slot)}

    def windows(self) -> List[int]:
        return sorted(self._windows)

    def gc(self, keep_from: int) -> int:
        stale = [window for window in self._windows if window < keep_from]
        for window in stale:
            del self._windows[window]
        return len(stale)


class FilesystemStore(UpdateStore):
    """Directory-backed store for real multi-process runs on shared disk.

    Layout: ``<root>/window-%08d/<peer_id>.bin``. Writes go to a temp
    file in the same directory and are moved into place with
    ``os.replace``, which is atomic on POSIX — a reader either sees the
    whole blob or no file at all. Peer ids are restricted to a safe
    filename alphabet so a hostile id cannot escape the store root.
    """

    # No leading dot: keeps "." / ".." / hidden-file names out entirely.
    _PEER_ID = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9._-]*$")
    _WINDOW_DIR = re.compile(r"^window-(\d{8})$")

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _window_dir(self, window: int) -> str:
        return os.path.join(self.root, f"window-{window:08d}")

    def _check_peer_id(self, peer_id: str) -> None:
        if not self._PEER_ID.match(peer_id):
            raise ValueError(
                f"peer id {peer_id!r} is not filesystem-safe "
                f"(allowed: letters, digits, '.', '_', '-')"
            )

    def publish(self, window: int, peer_id: str, blob: bytes) -> None:
        _check_publish(window, peer_id, blob)
        self._check_peer_id(peer_id)
        directory = self._window_dir(window)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, os.path.join(directory, f"{peer_id}.bin"))
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    def fetch(self, window: int) -> Dict[str, bytes]:
        directory = self._window_dir(window)
        if not os.path.isdir(directory):
            return {}
        out: Dict[str, bytes] = {}
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".bin"):
                continue  # temp files mid-write, foreign droppings
            with open(os.path.join(directory, name), "rb") as handle:
                out[name[: -len(".bin")]] = handle.read()
        return out

    def windows(self) -> List[int]:
        found = []
        for name in os.listdir(self.root):
            match = self._WINDOW_DIR.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def gc(self, keep_from: int) -> int:
        removed = 0
        for window in self.windows():
            directory = self._window_dir(window)
            if window < keep_from:
                shutil.rmtree(directory, ignore_errors=True)
                removed += 1
                continue
            # A publisher that crashed between mkstemp and os.replace
            # leaves its ``.tmp`` behind. ``fetch`` already ignores the
            # strays (only ``.bin`` files are real); gc reclaims them so
            # a long run's store footprint stays bounded by live blobs.
            for name in os.listdir(directory):
                if name.endswith(".tmp"):
                    try:
                        os.remove(os.path.join(directory, name))
                    except OSError:
                        pass  # already gone (concurrent gc) — fine
        return removed
