"""Peer validation and scoring for open-membership gossip training.

Every update fetched from the store comes from an *untrusted* peer, so
before anything is averaged into the model each contribution runs a
four-layer screen:

1. **Integrity** — the self-describing payload must decode and pass its
   CRC stamps (:mod:`repro.compression.payload`), carry the expected
   model geometry, and expand to an all-finite dense update. Failures
   here are attributed to the publishing peer via its store key.
2. **Staleness** — the update's stamped window is compared to the
   current one. Mildly stale updates are *down-weighted* (half-life
   decay); updates older than ``max_lag`` windows — the signature of a
   lagging or replaying peer — are excluded and counted as an offence.
3. **Norm plausibility** — a contribution whose norm is a tiny fraction
   of the window's median is a free-rider (publishing zeros costs
   nothing and dilutes the average); one that dwarfs the median is a
   blow-up or an amplification attack. Both are excluded.
4. **Direction** — the classic Byzantine sign-flip survives every check
   above (valid CRC, plausible norm), so each contribution is compared
   against the mean of the *other* surviving contributions: a strongly
   negative cosine means the peer is pushing against the crowd and is
   excluded. With an honest majority the crowd direction is honest, so
   the flipped peer — not the honest ones — fails the test.

Per-peer trust evolves as an exponential moving average of clean/offence
outcomes: offences drag the score down geometrically, clean windows let
it recover, and a score below ``quarantine_threshold`` quarantines the
peer permanently — its updates are dropped unread from then on. Starting
from a clean score of 1.0, a persistent attacker is quarantined within
``ceil(log(threshold) / log(1 - score_alpha))`` windows (3 windows at
the defaults), which is the bound the acceptance tests assert.

Everything is deterministic: no wall clocks, no unseeded draws, and all
iteration in sorted-peer order — two honest peers screening the same
window compute bit-identical weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.validation import is_finite

#: Offence kinds a contribution can be excluded for.
OFFENCE_KINDS = (
    "corrupt-payload",
    "metadata",
    "non-finite",
    "time-travel",
    "lagging",
    "free-rider",
    "norm-blowup",
    "sign-flip",
)


@dataclass(frozen=True)
class ScorerConfig:
    """Thresholds for the validation screens and the trust dynamics.

    Attributes:
        score_alpha: EMA step toward each window's outcome (1 = offence-
            free, 0 = offence); larger reacts faster both ways.
        quarantine_threshold: score below this quarantines the peer
            permanently.
        staleness_half_life: lag in windows at which a stale update's
            weight halves.
        max_lag: updates stamped more than this many windows ago are
            excluded (and count as a ``"lagging"`` offence).
        free_rider_floor: contributions with norm below ``floor *
            median`` are excluded as free-riders.
        norm_ceiling: contributions with norm above ``ceiling * median``
            are excluded as blow-ups.
        cosine_floor: contributions whose cosine against the mean of the
            other survivors falls below this are excluded as sign-flips.
            Must be negative: honest peers on different data shards
            decorrelate, so only active opposition is punished.
    """

    score_alpha: float = 0.5
    quarantine_threshold: float = 0.2
    staleness_half_life: float = 2.0
    max_lag: int = 3
    free_rider_floor: float = 0.01
    norm_ceiling: float = 100.0
    cosine_floor: float = -0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.score_alpha <= 1.0:
            raise ValueError(
                f"score_alpha must be in (0, 1], got {self.score_alpha}"
            )
        if not 0.0 < self.quarantine_threshold < 1.0:
            raise ValueError(
                f"quarantine_threshold must be in (0, 1), "
                f"got {self.quarantine_threshold}"
            )
        if self.staleness_half_life <= 0:
            raise ValueError(
                f"staleness_half_life must be > 0, "
                f"got {self.staleness_half_life}"
            )
        if self.max_lag < 0:
            raise ValueError(f"max_lag must be >= 0, got {self.max_lag}")
        if self.free_rider_floor < 0:
            raise ValueError(
                f"free_rider_floor must be >= 0, got {self.free_rider_floor}"
            )
        if self.norm_ceiling <= 1.0:
            raise ValueError(
                f"norm_ceiling must be > 1, got {self.norm_ceiling}"
            )
        if self.cosine_floor >= 0:
            raise ValueError(
                f"cosine_floor must be negative, got {self.cosine_floor}"
            )

    @property
    def quarantine_windows_bound(self) -> int:
        """Max offending windows before a clean-history peer is quarantined."""
        return math.ceil(
            math.log(self.quarantine_threshold) / math.log(1.0 - self.score_alpha)
        ) if self.score_alpha < 1.0 else 1


@dataclass
class Contribution:
    """One peer's fetched update for a window, as handed to the scorer.

    ``update`` is the dense decompressed update (``None`` when decoding
    failed); ``decode_error`` carries the integrity failure, already
    classified as ``"corrupt-payload"`` / ``"metadata"`` by the decoder.
    ``stamped_window`` is the window the *payload* claims it was computed
    for, which a lagging peer stamps honestly in the past.
    """

    peer_id: str
    update: Optional[np.ndarray] = None
    stamped_window: Optional[int] = None
    decode_error: Optional[str] = None


@dataclass(frozen=True)
class Offence:
    """One excluded contribution (the scorer's audit-log entry)."""

    window: int
    peer_id: str
    kind: str
    detail: str = ""


@dataclass
class PeerRecord:
    """Trust state for one peer id."""

    score: float = 1.0
    clean_windows: int = 0
    offence_windows: int = 0
    quarantined_window: Optional[int] = None

    @property
    def quarantined(self) -> bool:
        return self.quarantined_window is not None


class PeerScorer:
    """Screens windowed contributions and maintains per-peer trust."""

    def __init__(self, config: Optional[ScorerConfig] = None):
        self.config = config if config is not None else ScorerConfig()
        self.records: Dict[str, PeerRecord] = {}
        self.offences: List[Offence] = []

    # ------------------------------------------------------------------
    # Trust bookkeeping
    # ------------------------------------------------------------------
    def record(self, peer_id: str) -> PeerRecord:
        """The peer's trust record, created clean on first sight."""
        if peer_id not in self.records:
            self.records[peer_id] = PeerRecord()
        return self.records[peer_id]

    def is_quarantined(self, peer_id: str) -> bool:
        record = self.records.get(peer_id)
        return record is not None and record.quarantined

    def quarantined_peers(self) -> List[str]:
        return sorted(
            peer for peer, record in self.records.items() if record.quarantined
        )

    # ------------------------------------------------------------------
    # The window screen
    # ------------------------------------------------------------------
    def weigh_window(
        self, window: int, contributions: List[Contribution]
    ) -> Dict[str, float]:
        """Screen one window's contributions; returns aggregation weights.

        Weights are ``score * staleness_decay`` for surviving
        contributions and ``0.0`` for excluded or quarantined ones —
        callers can aggregate with a straight weighted mean over the
        returned mapping. Trust records are updated as a side effect, so
        call this exactly once per (scorer, window).
        """
        cfg = self.config
        offenders: Dict[str, str] = {}
        lags: Dict[str, int] = {}
        survivors: Dict[str, Contribution] = {}

        ordered = sorted(contributions, key=lambda c: c.peer_id)
        for contribution in ordered:
            peer = contribution.peer_id
            if self.is_quarantined(peer):
                continue  # dropped unread; no further offence accounting
            kind = self._structural_offence(contribution)
            if kind is None:
                lag = window - int(contribution.stamped_window)
                if lag < 0:
                    kind = "time-travel"
                elif lag > cfg.max_lag:
                    kind = "lagging"
                else:
                    lags[peer] = lag
            if kind is not None:
                offenders[peer] = kind
            else:
                survivors[peer] = contribution

        self._norm_screen(survivors, offenders)
        self._direction_screen(survivors, offenders)

        weights: Dict[str, float] = {}
        seen = set()
        for contribution in ordered:
            peer = contribution.peer_id
            if peer in seen:
                continue
            seen.add(peer)
            if self.is_quarantined(peer):
                weights[peer] = 0.0
                continue
            record = self.record(peer)
            if peer in offenders:
                self.offences.append(
                    Offence(window, peer, offenders[peer])
                )
                record.offence_windows += 1
                record.score = (1.0 - cfg.score_alpha) * record.score
                weights[peer] = 0.0
                if record.score < cfg.quarantine_threshold:
                    record.quarantined_window = window
            else:
                record.clean_windows += 1
                record.score = (
                    (1.0 - cfg.score_alpha) * record.score + cfg.score_alpha
                )
                decay = 0.5 ** (lags[peer] / cfg.staleness_half_life)
                weights[peer] = record.score * decay
        return weights

    def _structural_offence(self, contribution: Contribution) -> Optional[str]:
        if contribution.decode_error is not None:
            kind = contribution.decode_error.split(":", 1)[0]
            return kind if kind in OFFENCE_KINDS else "corrupt-payload"
        if contribution.update is None or contribution.stamped_window is None:
            return "metadata"
        if not is_finite(contribution.update):
            return "non-finite"
        return None

    def _norm_screen(
        self,
        survivors: Dict[str, Contribution],
        offenders: Dict[str, str],
    ) -> None:
        """Exclude implausibly small (free-rider) or huge (blow-up) norms."""
        if len(survivors) < 2:
            return  # no population to compare against
        norms = {
            peer: float(np.linalg.norm(contribution.update))
            for peer, contribution in survivors.items()
        }
        median = float(np.median(sorted(norms.values())))
        if median <= 0.0:
            return  # everyone published zeros; direction screen is moot too
        cfg = self.config
        for peer in sorted(norms):
            ratio = norms[peer] / median
            if ratio < cfg.free_rider_floor:
                offenders[peer] = "free-rider"
                del survivors[peer]
            elif ratio > cfg.norm_ceiling:
                offenders[peer] = "norm-blowup"
                del survivors[peer]

    def _direction_screen(
        self,
        survivors: Dict[str, Contribution],
        offenders: Dict[str, str],
    ) -> None:
        """Exclude contributions strongly opposed to the rest of the crowd."""
        if len(survivors) < 3:
            return  # with <= 2 voices there is no crowd to disagree with
        peers = sorted(survivors)
        stacked = {peer: survivors[peer].update.reshape(-1) for peer in peers}
        total = np.sum([stacked[peer] for peer in peers], axis=0)
        flagged = []
        for peer in peers:
            own = stacked[peer]
            rest = total - own
            denom = float(np.linalg.norm(own)) * float(np.linalg.norm(rest))
            if denom <= 0.0:
                continue
            cosine = float(np.dot(own, rest)) / denom
            if cosine < self.config.cosine_floor:
                flagged.append(peer)
        if len(flagged) * 2 >= len(peers):
            # The "dissenters" are not a minority — the crowd itself is
            # split, so punishing either side would let an adversarial
            # majority eject honest peers. Leave direction judgement to
            # the norm/staleness screens this window.
            return
        for peer in flagged:
            offenders[peer] = "sign-flip"
            del survivors[peer]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def offences_of_kind(self, kind: str) -> List[Offence]:
        return [offence for offence in self.offences if offence.kind == kind]

    def render(self) -> str:
        """Human-readable per-peer trust table plus the offence log."""
        if not self.records:
            return "no peers scored yet"
        lines = [f"{'peer':<12} {'score':>6} {'clean':>6} {'offend':>7} status"]
        for peer in sorted(self.records):
            record = self.records[peer]
            status = (
                f"QUARANTINED @ window {record.quarantined_window}"
                if record.quarantined else "trusted"
            )
            lines.append(
                f"{peer:<12} {record.score:>6.3f} {record.clean_windows:>6} "
                f"{record.offence_windows:>7} {status}"
            )
        if self.offences:
            lines.append("offences:")
            for offence in self.offences:
                lines.append(
                    f"  window {offence.window:>3}: {offence.peer_id} "
                    f"-> {offence.kind}"
                )
        return "\n".join(lines)
