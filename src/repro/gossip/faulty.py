"""A seeded fault-injecting decorator over any :class:`UpdateStore`.

The gossip stack's defenses (CRC screens, staleness stamps, quarantine
scoring) were built against *peer* misbehaviour — but in a real
deployment the store itself is the flakiest component: an object store
times out, a PUT vanishes, a GET returns half an object, replication
lags a write behind the window that needed it. :class:`FaultyStore`
wraps any backend with exactly those failure modes, drawn from a seeded
stream so every campaign replays bit-identically:

- **dropped publishes** — the PUT is silently lost; other peers see the
  publisher as absent for the window (indistinguishable from churn,
  which is the point);
- **delayed publishes** — the PUT succeeds but only becomes *visible*
  ``delay_windows`` windows later (replication lag): it misses its own
  window's aggregation and surfaces for late catch-up fetches;
- **torn fetches** — the GET returns a strict prefix of the blob, which
  the CRC screen must reject exactly like a corrupt-payload peer;
- **unavailability windows** — every operation against a scheduled
  window raises :class:`StoreUnavailableError`; the cluster degrades
  (lost publish, empty fetch) instead of deadlocking.

Every draw is keyed by ``(seed, window, crc32(peer_id), stream)`` — not
by call order — so retried and repeated operations see the same fate,
and two clusters over the same plan stay bit-identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.gossip.store import UpdateStore

#: Seed-tuple sentinels keeping the publish and fetch fate streams
#: independent (the same convention as the trainer's fault streams).
_PUBLISH_STREAM = 2**31 - 11
_FETCH_STREAM = 2**31 - 12


class StoreUnavailableError(RuntimeError):
    """The store's backend is down for this window (timeout, 5xx, ...)."""

    def __init__(self, op: str, window: int):
        super().__init__(
            f"update store unavailable for {op} in window {window}"
        )
        self.op = op
        self.window = window


@dataclass(frozen=True)
class StoreFaultConfig:
    """What goes wrong, how often, and when.

    Attributes:
        seed: root of the fate streams; same seed => same faults.
        drop_publish_rate: probability a publish is silently lost.
        delay_publish_rate: probability a publish is delivered late
            (mutually exclusive with a drop: the drop die is rolled
            first, then the delay die on the survivors).
        delay_windows: visibility lag of a delayed publish, in windows.
        torn_fetch_rate: per-(window, peer) probability a fetched blob
            comes back as a strict prefix of the published bytes.
        outage_windows: window indices during which every publish/fetch
            raises :class:`StoreUnavailableError`.
    """

    seed: int = 0
    drop_publish_rate: float = 0.0
    delay_publish_rate: float = 0.0
    delay_windows: int = 1
    torn_fetch_rate: float = 0.0
    outage_windows: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_publish_rate", "delay_publish_rate",
                     "torn_fetch_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_publish_rate + self.delay_publish_rate > 1.0:
            raise ValueError(
                "drop_publish_rate + delay_publish_rate must be <= 1"
            )
        if self.delay_windows < 1:
            raise ValueError(
                f"delay_windows must be >= 1, got {self.delay_windows}"
            )
        object.__setattr__(
            self, "outage_windows", tuple(self.outage_windows)
        )
        if any(window < 0 for window in self.outage_windows):
            raise ValueError("outage_windows must all be >= 0")


@dataclass
class StoreFaultStats:
    """What the wrapper actually did, for reports and chaos invariants."""

    dropped_publishes: int = 0
    delayed_publishes: int = 0
    delivered_late: int = 0
    torn_fetches: int = 0
    unavailable_ops: int = 0

    def render(self) -> str:
        return "\n".join([
            f"dropped publishes : {self.dropped_publishes}",
            f"delayed publishes : {self.delayed_publishes}",
            f"delivered late    : {self.delivered_late}",
            f"torn fetches      : {self.torn_fetches}",
            f"unavailable ops   : {self.unavailable_ops}",
        ])


def _peer_key(peer_id: str) -> int:
    """A stable, platform-independent integer for seed tuples."""
    return zlib.crc32(peer_id.encode("utf-8"))


class FaultyStore(UpdateStore):
    """Inject seeded store faults in front of any backend.

    The wrapper is a pure decorator: it owns no blobs except the
    in-flight delayed publishes, so wrapping and unwrapping the same
    backend mid-run is safe, and ``inner`` can be shared (the backend
    sees only well-formed operations).
    """

    def __init__(self, inner: UpdateStore, config: StoreFaultConfig):
        self.inner = inner
        self.config = config
        self.stats = StoreFaultStats()
        #: Delayed blobs by visibility window: release -> [(window,
        #: peer_id, blob), ...] in publish order.
        self._delayed: Dict[int, List[Tuple[int, str, bytes]]] = {}
        #: Highest window any operation has referenced; delayed blobs
        #: whose release window has been reached flush into ``inner``.
        self._clock = -1

    # ------------------------------------------------------------------
    # Fate draws
    # ------------------------------------------------------------------
    def _rng(self, stream: int, window: int, peer_id: str) -> np.random.Generator:
        return np.random.default_rng(
            (self.config.seed, window, _peer_key(peer_id), stream)
        )

    def _advance(self, window: int) -> None:
        """Move the visibility clock; flush delayed publishes now due."""
        if window <= self._clock:
            return
        self._clock = window
        for release in sorted(self._delayed):
            if release > window:
                break
            for original_window, peer_id, blob in self._delayed.pop(release):
                self.inner.publish(original_window, peer_id, blob)
                self.stats.delivered_late += 1

    # ------------------------------------------------------------------
    # UpdateStore interface
    # ------------------------------------------------------------------
    def publish(self, window: int, peer_id: str, blob: bytes) -> None:
        if window in self.config.outage_windows:
            self.stats.unavailable_ops += 1
            raise StoreUnavailableError("publish", window)
        self._advance(window)
        cfg = self.config
        if cfg.drop_publish_rate or cfg.delay_publish_rate:
            fate = float(self._rng(_PUBLISH_STREAM, window, peer_id).random())
            if fate < cfg.drop_publish_rate:
                self.stats.dropped_publishes += 1
                return
            if fate < cfg.drop_publish_rate + cfg.delay_publish_rate:
                self.stats.delayed_publishes += 1
                self._delayed.setdefault(
                    window + cfg.delay_windows, []
                ).append((window, peer_id, bytes(blob)))
                return
        self.inner.publish(window, peer_id, blob)

    def fetch(self, window: int) -> Dict[str, bytes]:
        if window in self.config.outage_windows:
            self.stats.unavailable_ops += 1
            raise StoreUnavailableError("fetch", window)
        self._advance(window)
        fetched = self.inner.fetch(window)
        if not self.config.torn_fetch_rate:
            return fetched
        out: Dict[str, bytes] = {}
        for peer_id, blob in fetched.items():
            rng = self._rng(_FETCH_STREAM, window, peer_id)
            if blob and float(rng.random()) < self.config.torn_fetch_rate:
                # A strict prefix: at least 0, at most len-1 bytes — the
                # length is drawn from the same keyed stream, so the same
                # fetch always tears the same way.
                keep = int(rng.integers(0, len(blob)))
                out[peer_id] = blob[:keep]
                self.stats.torn_fetches += 1
            else:
                out[peer_id] = blob
        return out

    def windows(self) -> List[int]:
        return self.inner.windows()

    def gc(self, keep_from: int) -> int:
        # In-flight delayed blobs for collected windows will never be
        # wanted again: drop them instead of resurrecting dead windows.
        for release in list(self._delayed):
            kept = [
                entry for entry in self._delayed[release]
                if entry[0] >= keep_from
            ]
            if kept:
                self._delayed[release] = kept
            else:
                del self._delayed[release]
        return self.inner.gc(keep_from)
