"""Open-membership gossip training: windowed, store-mediated exchange.

The closed-world stack (:mod:`repro.train`, :mod:`repro.faults`,
:mod:`repro.elastic`) assumes a roster: everyone knows who is in the
group, collectives run in lockstep, and a joiner is hand-held by a donor.
This package drops all three assumptions. Peers publish compressed,
CRC-stamped momentum updates to a shared :class:`UpdateStore` once per
*window*, aggregate whatever their untrusted neighbours published, and
defend themselves with a per-peer :class:`PeerScorer` that quarantines
corrupt, free-riding, lagging, and Byzantine (sign-flipping) publishers.

Entry points:

- :class:`GossipCluster` — seeded single-process harness driving many
  peers through the window loop (the ``python -m repro gossip`` backend).
- :class:`UpdateStore` / :class:`InMemoryStore` / :class:`FilesystemStore`
  — the communication fabric.
- :class:`FaultyStore` / :class:`StoreFaultConfig` — seeded store-level
  fault injection (drops, replication lag, torn fetches, outages) over
  any backend, for the chaos harness and the robustness tests.
- :class:`PeerScorer` / :class:`ScorerConfig` — the Byzantine screen.
- :mod:`repro.sim.gossip` — window-length and staleness pricing on the
  calibrated link models.
"""

from repro.gossip.scorer import (
    OFFENCE_KINDS,
    Contribution,
    Offence,
    PeerRecord,
    PeerScorer,
    ScorerConfig,
)
from repro.gossip.faulty import (
    FaultyStore,
    StoreFaultConfig,
    StoreFaultStats,
    StoreUnavailableError,
)
from repro.gossip.store import FilesystemStore, InMemoryStore, UpdateStore
from repro.gossip.trainer import (
    FlatLayout,
    GossipCluster,
    GossipConfig,
    GossipPeer,
    GossipReport,
    decode_update,
    evaluate,
)

__all__ = [
    "OFFENCE_KINDS",
    "Contribution",
    "Offence",
    "PeerRecord",
    "PeerScorer",
    "ScorerConfig",
    "FaultyStore",
    "StoreFaultConfig",
    "StoreFaultStats",
    "StoreUnavailableError",
    "FilesystemStore",
    "InMemoryStore",
    "UpdateStore",
    "FlatLayout",
    "GossipCluster",
    "GossipConfig",
    "GossipPeer",
    "GossipReport",
    "decode_update",
    "evaluate",
]
