"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``simulate`` — one iteration of a method on a simulated cluster, with an
  optional Chrome-trace export of the timeline;
- ``autotune`` — search the fusion buffer size minimizing iteration time;
- ``train`` — a small data-parallel convergence run on synthetic data;
  ``--resilient`` arms the fault-tolerance stack (injected communication
  faults + self-healing collectives + trainer recovery ladder);
- ``elastic`` — elastic-membership demo: a rank dies mid-run, later
  rejoins, and a brand-new rank joins, all committed at step boundaries
  with state warm-start and dataset re-sharding;
- ``gossip`` — open-membership gossip training demo: peers exchange
  compressed updates through a shared store, a configurable fraction of
  them is adversarial, and the peer scorer quarantines every attacker;
- ``faults`` — straggler/drop sensitivity of each method's iteration time
  (the "what does a 3-sigma straggler do to ACP-SGD vs S-SGD" question);
- ``chaos`` — seeded randomized chaos campaigns across worker-process
  supervision, elastic eject/rejoin, and gossip-over-faulty-store runs,
  asserting bit-identity, zero shm leaks, and reconciling fault stats
  under a global deadlock timeout;
- ``plan`` — one-shot deployment recommendation (``--json`` emits the
  versioned schema the planning service serves);
- ``serve`` — capacity-planning service loop: JSONL queries on stdin (or
  ``--input``), canonical JSONL plans on stdout, backed by the sharded
  memoized result cache with single-flight de-duplication;
- ``evaluate`` — regenerate the paper's tables/figures (wraps the
  experiment drivers; ``--fast`` skips the convergence figures);
- ``bench`` — hot-path micro-benchmark: per-aggregator step time with
  legacy copying gradients vs the zero-copy arena, written to JSON;
  ``--planner`` benchmarks the planning service instead (cold/warm
  queries-per-second, hit rate, p50/p99 latency → BENCH_planner.json).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.models import get_model_spec
from repro.sim.calibration import SIM_LINKS
from repro.sim.strategies import ALL_METHODS, ClusterSpec, SystemConfig

MB = 1024 * 1024


_INTRA_LINKS = ("NVLink2", "PCIe3x16")


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="BERT-Base",
                        help="ResNet-50 | ResNet-152 | BERT-Base | BERT-Large | ...")
    parser.add_argument("--gpus", type=int, default=32)
    parser.add_argument("--link", default="10GbE", choices=sorted(SIM_LINKS))
    parser.add_argument("--rank", type=int, default=32,
                        help="low-rank compression rank")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=0,
                        help="model a two-level topology of this many nodes "
                             "(--gpus must divide evenly; 0 = flat ring "
                             "over --link)")
    parser.add_argument("--intra-link", default="NVLink2",
                        choices=_INTRA_LINKS,
                        help="intra-node GPU link for --nodes topologies")


def _topology_from(args: argparse.Namespace):
    """The ClusterTopology requested via --nodes/--intra-link, or None."""
    if not getattr(args, "nodes", 0):
        return None
    from repro.comm.topology import NVLINK2, PCIE3_X16, ClusterTopology

    if args.gpus % args.nodes != 0:
        raise SystemExit(
            f"--gpus {args.gpus} is not divisible by --nodes {args.nodes}"
        )
    intra = NVLINK2 if args.intra_link == "NVLink2" else PCIE3_X16
    return ClusterTopology(
        num_nodes=args.nodes,
        gpus_per_node=args.gpus // args.nodes,
        intra_link=intra,
        inter_link=SIM_LINKS[args.link],
    )


def _cluster_from(args: argparse.Namespace) -> ClusterSpec:
    return ClusterSpec(world_size=args.gpus, link=SIM_LINKS[args.link],
                       topology=_topology_from(args))


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.strategies import simulate_iteration, simulate_iteration_records
    from repro.sim.trace import write_chrome_trace

    spec = get_model_spec(args.model)
    system = SystemConfig(
        wfbp=not args.no_wfbp,
        tensor_fusion=not args.no_tf,
        buffer_bytes=args.buffer_mb * MB,
    )
    breakdown = simulate_iteration(
        args.method, spec, cluster=_cluster_from(args), system=system,
        rank=args.rank, batch_size=args.batch_size,
    )
    print(breakdown.render(f"{args.method} / {args.model} / "
                           f"{args.gpus}x{args.link}"))
    if args.trace:
        records = simulate_iteration_records(
            args.method, spec, cluster=_cluster_from(args), system=system,
            rank=args.rank, batch_size=args.batch_size,
        )
        write_chrome_trace(records, args.trace)
        print(f"wrote timeline to {args.trace} (open in chrome://tracing)")
    return 0


def cmd_autotune(args: argparse.Namespace) -> int:
    from repro.sim.autotune import autotune_buffer_size

    spec = get_model_spec(args.model)
    result = autotune_buffer_size(
        args.method, spec, cluster=_cluster_from(args), rank=args.rank,
        batch_size=args.batch_size,
    )
    print(f"best buffer: {result.best_buffer_mb:.2f}MB "
          f"-> {result.best_time * 1e3:.1f}ms/iteration")
    for buffer_bytes in sorted(result.evaluated):
        marker = "  <-- best" if buffer_bytes == result.best_buffer_bytes else ""
        print(f"  {buffer_bytes / MB:8.2f}MB  "
              f"{result.evaluated[buffer_bytes] * 1e3:8.1f}ms{marker}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.comm import ProcessGroup
    from repro.models import make_small_resnet, make_small_vgg
    from repro.optim import SGD, make_aggregator
    from repro.train import DataParallelTrainer, ResilienceConfig, make_cifar_like

    train_data, test_data = make_cifar_like(
        num_train=args.samples, num_test=max(100, args.samples // 4),
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed + 1)
    if args.arch == "vgg":
        model = make_small_vgg(rng=rng)
    else:
        model = make_small_resnet(rng=rng)
    resilience = None
    if args.resilient:
        from repro.faults import FaultInjector, FaultPlan, ResilientProcessGroup

        injector = None
        if args.drop_rate > 0 or args.corrupt_rate > 0 or args.straggler_rate > 0:
            injector = FaultInjector(FaultPlan(
                seed=args.fault_seed,
                drop_rate=args.drop_rate,
                corrupt_rate=args.corrupt_rate,
                straggler_rate=args.straggler_rate,
            ))
        group = ResilientProcessGroup(args.workers, injector=injector)
        resilience = ResilienceConfig()
    else:
        group = ProcessGroup(args.workers)
    kwargs = {}
    if args.method in ("powersgd", "acpsgd"):
        kwargs["rank"] = args.rank
    aggregator = make_aggregator(args.method, group, **kwargs)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=args.lr, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=args.batch_size or 32,
        seed=args.seed + 2, resilience=resilience,
    )
    history = trainer.run(args.epochs, args.steps_per_epoch,
                          method_label=args.method)
    print(history.render())
    print(f"final accuracy {history.final_accuracy:.1%}; "
          f"wire traffic {group.total_bytes() / MB:.1f}MB")
    if args.resilient:
        print("--- communication resilience ---")
        print(group.resilience_report())
        if trainer.resilience_log is not None:
            print("--- trainer resilience ---")
            print(trainer.resilience_log.render())
    return 0


def cmd_elastic(args: argparse.Namespace) -> int:
    """Elastic-membership demo: a rank dies, rejoins, and a new one joins."""
    import numpy as np

    from repro.elastic import MembershipController
    from repro.faults import (
        FaultInjector, FaultPlan, Join, PermanentFailure, Recovery,
        ResilientProcessGroup,
    )
    from repro.models import make_small_resnet
    from repro.optim import SGD, make_aggregator
    from repro.train import DataParallelTrainer, ResilienceConfig, make_cifar_like

    train_data, test_data = make_cifar_like(
        num_train=args.samples, num_test=max(100, args.samples // 4),
        seed=args.seed,
    )
    model = make_small_resnet(rng=np.random.default_rng(args.seed + 1))
    plan = FaultPlan(
        seed=args.fault_seed,
        permanent=(PermanentFailure(rank=args.workers - 1,
                                    call_index=args.fail_call),),
        recoveries=(Recovery(rank=args.workers - 1,
                             call_index=args.rejoin_call),),
        joins=(Join(call_index=args.join_call),),
    )
    group = ResilientProcessGroup(args.workers, injector=FaultInjector(plan))
    membership = MembershipController(group)
    kwargs = {}
    if args.method in ("powersgd", "acpsgd"):
        kwargs["rank"] = args.rank
    aggregator = make_aggregator(args.method, group, **kwargs)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=args.lr, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=args.batch_size or 32,
        seed=args.seed + 2, resilience=ResilienceConfig(),
        membership=membership,
    )
    history = trainer.run(args.epochs, args.steps_per_epoch,
                          method_label=args.method)
    print(history.render())
    print(f"final accuracy {history.final_accuracy:.1%}; "
          f"wire traffic {group.total_bytes() / MB:.1f}MB")
    print("--- membership ---")
    print(membership.log.render())
    print("--- communication resilience ---")
    print(group.resilience_report())
    return 0


def cmd_gossip(args: argparse.Namespace) -> int:
    """Open-membership gossip demo: adversarial peers get quarantined."""
    import numpy as np

    from repro.faults import FaultPlan, PeerFault
    from repro.gossip import (
        FilesystemStore, GossipCluster, GossipConfig, InMemoryStore,
    )
    from repro.models import make_mlp
    from repro.sim.gossip import GossipWindowSpec, render_window_sweep
    from repro.train import ArrayDataset, make_cifar_like

    if args.adversaries >= args.peers / 2:
        raise SystemExit(
            f"--adversaries {args.adversaries} is not an honest-majority "
            f"roster at --peers {args.peers}"
        )
    train_images, test_images = make_cifar_like(
        num_train=args.samples, num_test=max(100, args.samples // 4),
        image_size=8, seed=args.seed,
    )
    train_data = ArrayDataset(
        train_images.inputs.reshape(len(train_images), -1),
        train_images.labels,
    )
    test_data = ArrayDataset(
        test_images.inputs.reshape(len(test_images), -1),
        test_images.labels,
    )
    in_features = train_data.inputs.shape[1]
    num_classes = train_data.num_classes

    def factory():
        return make_mlp(
            in_features, args.hidden, num_classes,
            rng=np.random.default_rng(args.seed + 1),
        )

    kinds = [k.strip() for k in args.adversary_kinds.split(",") if k.strip()]
    peer_faults = tuple(
        PeerFault(kinds[i % len(kinds)], rank=args.peers - 1 - i)
        for i in range(args.adversaries)
    )
    plan = FaultPlan(seed=args.fault_seed, peer_faults=peer_faults)
    store = FilesystemStore(args.store_dir) if args.store_dir else InMemoryStore()
    config = GossipConfig(
        local_steps=args.local_steps,
        batch_size=args.batch_size,
        lr=args.lr,
        compression_ratio=args.compression_ratio,
        store_retention=args.retention if args.retention > 0 else None,
    )
    cluster = GossipCluster(
        factory, train_data, test_data, config, plan=plan,
        peers=args.peers, store=store, seed=args.seed + 2,
    )
    report = cluster.run(args.windows)
    print(report.render())
    print("--- peer trust (reference peer's view) ---")
    print(cluster.reference_peer().scorer.render())
    if args.window_sweep:
        update_bytes = len(
            cluster.reference_peer().make_update(args.windows)
        )
        spec = GossipWindowSpec(
            peers=args.peers,
            update_bytes=update_bytes,
            step_time_s=args.step_time_ms * 1e-3,
            churn_per_step=args.churn_per_step,
        )
        print("--- window economy ---")
        print(render_window_sweep(spec, SIM_LINKS[args.link]))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.sim.faults import (
        FaultModel,
        compare_methods_under_faults,
        render_fault_comparison,
    )

    spec = get_model_spec(args.model)
    fault_model = FaultModel(
        straggler_prob=args.straggler_prob,
        straggler_sigma=args.straggler_sigma,
        drop_rate=args.drop_rate,
        retry_timeout_s=args.retry_timeout_ms * 1e-3,
        rank_down_s=args.rank_down_ms * 1e-3,
    )
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    for method in methods:
        if method not in ALL_METHODS:
            raise SystemExit(
                f"unknown method {method!r}; available: {', '.join(ALL_METHODS)}"
            )
    traces = compare_methods_under_faults(
        methods, spec, fault_model, cluster=_cluster_from(args),
        rank=args.rank, batch_size=args.batch_size,
        iterations=args.iterations, seed=args.seed,
    )
    print(f"{args.model} on {args.gpus}x{args.link}: "
          f"straggler_prob={fault_model.straggler_prob} "
          f"sigma={fault_model.straggler_sigma} "
          f"drop_rate={fault_model.drop_rate} "
          f"({args.iterations} iterations)")
    print(render_fault_comparison(traces))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.planner import plan

    result = plan(
        args.model, gpus=args.gpus, link=args.link, rank=args.rank,
        batch_size=args.batch_size, tune_buffer=not args.no_tune,
        topology=_topology_from(args),
    )
    if args.json:
        import json

        from repro.serve.schema import plan_to_dict

        # The exact schema the planning service caches and streams — one
        # serialization, two frontends (see docs/planner_service.md).
        print(json.dumps(plan_to_dict(result), indent=2, sort_keys=True))
        return 0
    print(result.render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """JSONL planning loop: queries in, canonical plan documents out."""
    import sys

    from repro.serve import PlannerService, ResultCache, serve_jsonl

    service = PlannerService(
        cache=ResultCache(shards=args.shards,
                          capacity_per_shard=args.capacity_per_shard),
        max_workers=args.workers,
    )
    try:
        if args.warm_start:
            models = None
            if args.warm_models:
                models = [m.strip() for m in args.warm_models.split(",")
                          if m.strip()]
            computed = service.warm_start(models=models)
            print(f"warm start: {computed} grid points precomputed",
                  file=sys.stderr)
        in_handle = (sys.stdin if args.input == "-"
                     else open(args.input, "r", encoding="utf-8"))
        out_handle = (sys.stdout if args.output == "-"
                      else open(args.output, "w", encoding="utf-8"))
        try:
            for line in serve_jsonl(in_handle, service,
                                    batch_size=args.batch_lines):
                out_handle.write(line + "\n")
            out_handle.flush()
        finally:
            if in_handle is not sys.stdin:
                in_handle.close()
            if out_handle is not sys.stdout:
                out_handle.close()
        stats = service.stats()
        cache = stats["cache"]
        print(f"served: {cache['hits'] + cache['misses']} lookups, "
              f"{stats['computes']} simulator runs, "
              f"hit rate {cache['hit_rate']:.1%}, "
              f"generation {stats['generation']}", file=sys.stderr)
    finally:
        service.close()
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    if args.json:
        from repro.experiments.export import export_json

        export_json(args.json, fast=args.fast)
        print(f"wrote structured results to {args.json}")
        return 0
    from repro.experiments.report import render_full_report

    render_full_report(fast=args.fast)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import signal

    from repro.chaos import SCENARIOS, run_campaigns

    scenarios = (
        [s.strip() for s in args.scenarios.split(",") if s.strip()]
        if args.scenarios
        else list(SCENARIOS)
    )

    def on_timeout(signum, frame):
        raise TimeoutError(
            f"chaos run exceeded the global {args.timeout}s budget — "
            f"a campaign deadlocked"
        )

    armed = hasattr(signal, "SIGALRM") and args.timeout > 0
    if armed:
        previous = signal.signal(signal.SIGALRM, on_timeout)
        signal.alarm(args.timeout)
    try:
        report = run_campaigns(
            scenarios=scenarios,
            campaigns=args.campaigns,
            seed=args.seed,
            log=print,
        )
    finally:
        if armed:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
    print(report.render().splitlines()[-1])
    return 0 if report.passed else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    if args.sim:
        from repro.sched.bench import render_sim_report, run_sim_bench

        report = run_sim_bench(
            num_tasks=args.sim_tasks, streams=args.sim_streams,
            seed=args.seed,
        )
        print(render_sim_report(report))
        output = args.output
        if output == "BENCH_hotpath.json":  # hot-path default; retarget
            output = "BENCH_sim.json"
        if output:
            with open(output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"wrote report to {output}")
        return 0

    if args.planner:
        from repro.serve.bench import render_report, run_planner_bench

        report = run_planner_bench(
            unique_queries=args.queries,
            warm_lookups=args.warm_lookups,
            max_workers=args.max_workers,
            tune_buffer=args.tune_buffer,
            seed=args.seed,
        )
        print(render_report(report))
        output = args.output
        if output == "BENCH_hotpath.json":  # hot-path default; retarget
            output = "BENCH_planner.json"
        if output:
            with open(output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"wrote report to {output}")
        return 0

    # Imported lazily: bench pulls in the aggregators, which import the
    # perf counters — keeping this out of module scope avoids the cycle.
    from repro.perf.bench import run_hot_path_bench

    methods = None
    if args.methods:
        methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    buffer_sizes_mb = None
    if args.buffer_sizes:
        buffer_sizes_mb = [
            float(s.strip()) for s in args.buffer_sizes.split(",") if s.strip()
        ]
    elif args.no_buffer_sweep:
        buffer_sizes_mb = []
    worker_modes = None
    if args.workers:
        worker_modes = [
            m.strip() for m in args.workers.split(",")
            if m.strip() and m.strip() != "none"
        ]
        for mode in worker_modes:
            if mode not in ("seq", "thread", "process"):
                print(f"unknown worker backend {mode!r} "
                      "(expected seq, thread, process, or none)")
                return 2
        if "process" in worker_modes and "thread" not in worker_modes:
            # The acceptance criterion is process-vs-thread: measuring
            # process alone would record a speedup over nothing.
            worker_modes.insert(worker_modes.index("process"), "thread")
    report = run_hot_path_bench(
        world_size=args.world_size,
        base_width=args.base_width,
        iters=args.iters,
        warmup=args.warmup,
        seed=args.seed,
        methods=methods,
        include_train_step=not args.no_train_step,
        buffer_sizes_mb=buffer_sizes_mb,
        worker_modes=worker_modes,
    )
    config = report["config"]
    print(f"hot-path bench: {config['model_parameters']} params, "
          f"{config['world_size']} workers, best of {config['iters']}")
    print(f"{'method':>10}  {'legacy ms':>10}  {'arena ms':>10}  {'speedup':>8}")
    for method, row in report["aggregate_step"].items():
        print(f"{method:>10}  {row['legacy']['best_s'] * 1e3:>10.2f}  "
              f"{row['arena']['best_s'] * 1e3:>10.2f}  "
              f"{row['arena_speedup']:>7.2f}x")
    if "criteria" in report:
        crit = report["criteria"]
        print(f"ssgd arena speedup {crit['ssgd_arena_speedup']:.2f}x "
              f"(target {crit['ssgd_speedup_target']}x); "
              f"fused allocs/step on arena path: "
              f"{crit['arena_fused_allocs_per_step']:.0f}")
    if "buffer_sweep" in report:
        print(f"{'buffer MB':>10}  {'buckets':>8}  {'step ms':>8}")
        for row in report["buffer_sweep"]:
            print(f"{row['buffer_mbytes']:>10.2f}  {row['num_buckets']:>8}  "
                  f"{row['best_s'] * 1e3:>8.2f}")
    if "worker_modes" in report:
        print(f"worker backends ({config['cpu_count']} cpu):")
        print(f"{'method':>10}  {'backend':>8}  {'step ms':>8}  "
              f"{'worker ms':>9}  {'aggregate ms':>12}  {'bcast ms':>8}")
        for method, rows in report["worker_modes"].items():
            for mode, row in rows.items():
                if mode == "process_vs_thread_speedup":
                    continue
                print(f"{method:>10}  {mode:>8}  {row['best_s'] * 1e3:>8.2f}  "
                      f"{row['worker_mean_s'] * 1e3:>9.2f}  "
                      f"{row['aggregate_mean_s'] * 1e3:>12.2f}  "
                      f"{row['broadcast_mean_s'] * 1e3:>8.2f}")
            speedup = rows.get("process_vs_thread_speedup")
            if speedup is not None:
                print(f"{method:>10}  process vs thread: {speedup:.2f}x")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote report to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACP-SGD gradient-compression reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate one training iteration")
    p_sim.add_argument("--method", default="acpsgd", choices=ALL_METHODS)
    _add_cluster_args(p_sim)
    p_sim.add_argument("--buffer-mb", type=float, default=25.0)
    p_sim.add_argument("--no-wfbp", action="store_true")
    p_sim.add_argument("--no-tf", action="store_true")
    p_sim.add_argument("--trace", default="",
                       help="write a chrome://tracing JSON timeline here")
    p_sim.set_defaults(func=cmd_simulate)

    p_tune = sub.add_parser("autotune", help="tune the fusion buffer size")
    p_tune.add_argument("--method", default="acpsgd", choices=ALL_METHODS)
    _add_cluster_args(p_tune)
    p_tune.set_defaults(func=cmd_autotune)

    p_train = sub.add_parser("train", help="small data-parallel training run")
    p_train.add_argument("--method", default="acpsgd")
    p_train.add_argument("--arch", default="vgg", choices=("vgg", "resnet"))
    p_train.add_argument("--workers", type=int, default=4)
    p_train.add_argument("--epochs", type=int, default=5)
    p_train.add_argument("--steps-per-epoch", type=int, default=12)
    p_train.add_argument("--batch-size", type=int, default=32)
    p_train.add_argument("--samples", type=int, default=1600)
    p_train.add_argument("--lr", type=float, default=0.08)
    p_train.add_argument("--rank", type=int, default=4)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--resilient", action="store_true",
                         help="use ResilientProcessGroup + trainer recovery "
                              "ladder (arm the fault-tolerance stack)")
    p_train.add_argument("--drop-rate", type=float, default=0.0,
                         help="injected per-rank payload drop probability")
    p_train.add_argument("--corrupt-rate", type=float, default=0.0,
                         help="injected per-rank payload corruption probability")
    p_train.add_argument("--straggler-rate", type=float, default=0.0,
                         help="injected per-rank straggler probability")
    p_train.add_argument("--fault-seed", type=int, default=0,
                         help="seed for the deterministic fault plan")
    p_train.set_defaults(func=cmd_train)

    p_elastic = sub.add_parser(
        "elastic", help="elastic-membership demo: eject, rejoin, scale up"
    )
    p_elastic.add_argument("--method", default="acpsgd")
    p_elastic.add_argument("--workers", type=int, default=3)
    p_elastic.add_argument("--epochs", type=int, default=4)
    p_elastic.add_argument("--steps-per-epoch", type=int, default=10)
    p_elastic.add_argument("--batch-size", type=int, default=32)
    p_elastic.add_argument("--samples", type=int, default=1200)
    p_elastic.add_argument("--lr", type=float, default=0.08)
    p_elastic.add_argument("--rank", type=int, default=4)
    p_elastic.add_argument("--seed", type=int, default=0)
    p_elastic.add_argument("--fault-seed", type=int, default=0)
    p_elastic.add_argument("--fail-call", type=int, default=6,
                           help="collective call at which the last rank dies")
    p_elastic.add_argument("--rejoin-call", type=int, default=14,
                           help="collective call at which it recovers")
    p_elastic.add_argument("--join-call", type=int, default=22,
                           help="collective call at which a new rank joins")
    p_elastic.set_defaults(func=cmd_elastic)

    p_gossip = sub.add_parser(
        "gossip",
        help="open-membership gossip training with Byzantine peers",
    )
    p_gossip.add_argument("--peers", type=int, default=5)
    p_gossip.add_argument("--windows", type=int, default=20)
    p_gossip.add_argument("--local-steps", type=int, default=3)
    p_gossip.add_argument("--batch-size", type=int, default=16)
    p_gossip.add_argument("--samples", type=int, default=800)
    p_gossip.add_argument("--hidden", type=int, default=24)
    p_gossip.add_argument("--lr", type=float, default=0.3)
    p_gossip.add_argument("--compression-ratio", type=float, default=0.3,
                          help="fraction of momentum coordinates published")
    p_gossip.add_argument("--retention", type=int, default=0,
                          help="store windows kept (0 = keep all, which "
                               "lets joiners replay to bit-identity)")
    p_gossip.add_argument("--adversaries", type=int, default=2,
                          help="number of adversarial peers (must stay a "
                               "minority)")
    p_gossip.add_argument("--adversary-kinds",
                          default="sign-flip,corrupt-payload,free-rider,lagging",
                          help="comma-separated peer-fault kinds, assigned "
                               "round-robin to the adversaries")
    p_gossip.add_argument("--store-dir", default="",
                          help="back the update store with this directory "
                               "(default: in-memory)")
    p_gossip.add_argument("--seed", type=int, default=0)
    p_gossip.add_argument("--fault-seed", type=int, default=0)
    p_gossip.add_argument("--window-sweep", action="store_true",
                          help="also print the window-length economy table")
    p_gossip.add_argument("--link", default="10GbE", choices=sorted(SIM_LINKS))
    p_gossip.add_argument("--step-time-ms", type=float, default=50.0,
                          help="assumed local step time for the sweep")
    p_gossip.add_argument("--churn-per-step", type=float, default=0.002,
                          help="per-step departure probability for the sweep")
    p_gossip.set_defaults(func=cmd_gossip)

    p_faults = sub.add_parser(
        "faults", help="iteration-time sensitivity to stragglers/drops"
    )
    p_faults.add_argument("--methods", default="acpsgd,ssgd",
                          help="comma-separated method list")
    _add_cluster_args(p_faults)
    p_faults.add_argument("--straggler-prob", type=float, default=0.05,
                          help="per-rank per-iteration straggling probability")
    p_faults.add_argument("--straggler-sigma", type=float, default=3.0,
                          help="straggler severity (slowdown 1 + sigma*|z|)")
    p_faults.add_argument("--drop-rate", type=float, default=0.01,
                          help="per-transfer retransmission probability")
    p_faults.add_argument("--retry-timeout-ms", type=float, default=10.0,
                          help="detection timeout per retransmission")
    p_faults.add_argument("--rank-down-ms", type=float, default=0.0,
                          help="rank downtime at iteration start")
    p_faults.add_argument("--iterations", type=int, default=100)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.set_defaults(func=cmd_faults)

    p_plan = sub.add_parser("plan", help="recommend a method for a deployment")
    _add_cluster_args(p_plan)
    p_plan.add_argument("--no-tune", action="store_true",
                        help="skip the fusion-buffer autotuner")
    p_plan.add_argument("--json", action="store_true",
                        help="emit the plan in the versioned schema the "
                             "planning service uses (repro.serve.schema)")
    p_plan.set_defaults(func=cmd_plan)

    p_serve = sub.add_parser(
        "serve",
        help="capacity-planning service loop: JSONL queries in, plans out",
    )
    p_serve.add_argument("--input", default="-",
                         help="JSONL query file ('-' = stdin); one "
                              "PlanQuery document per line")
    p_serve.add_argument("--output", default="-",
                         help="JSONL plan file ('-' = stdout)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="thread-pool width for uncached queries")
    p_serve.add_argument("--shards", type=int, default=8,
                         help="result-cache shard count")
    p_serve.add_argument("--capacity-per-shard", type=int, default=4096,
                         help="LRU bound per cache shard")
    p_serve.add_argument("--batch-lines", type=int, default=64,
                         help="input lines answered per submit_batch")
    p_serve.add_argument("--warm-start", action="store_true",
                         help="precompute the registry-model grid before "
                              "serving")
    p_serve.add_argument("--warm-models", default="",
                         help="comma-separated models for --warm-start "
                              "(default: every registry model)")
    p_serve.set_defaults(func=cmd_serve)

    p_eval = sub.add_parser("evaluate", help="regenerate the paper evaluation")
    p_eval.add_argument("--fast", action="store_true",
                        help="skip the (slow) convergence figures")
    p_eval.add_argument("--json", default="",
                        help="write structured results to this JSON file "
                             "instead of printing tables")
    p_eval.set_defaults(func=cmd_evaluate)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded chaos campaigns across the robustness subsystems",
    )
    p_chaos.add_argument("--campaigns", type=int, default=2,
                         help="campaigns per scenario (each draws its own "
                              "config from the seed)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="root seed; campaign k derives from (seed, k)")
    p_chaos.add_argument("--scenarios", default="",
                         help="comma-separated subset of: workers, elastic, "
                              "gossip (default: all)")
    p_chaos.add_argument("--timeout", type=int, default=600,
                         help="global SIGALRM budget in seconds — a hang "
                              "anywhere fails loudly instead of deadlocking "
                              "(0 disables)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_bench = sub.add_parser(
        "bench", help="hot-path benchmark: legacy vs zero-copy arena"
    )
    p_bench.add_argument("--world-size", type=int, default=4,
                         help="simulated data-parallel worker count")
    p_bench.add_argument("--workers", default="",
                         help="comma-separated backprop backends to compare "
                              "end-to-end: seq, thread, process (default: "
                              "all three; 'process' pulls in the thread "
                              "baseline its speedup is measured against; "
                              "'none' skips the comparison)")
    p_bench.add_argument("--base-width", type=int, default=32,
                         help="VGG width multiplier (model size knob)")
    p_bench.add_argument("--iters", type=int, default=7,
                         help="timed iterations per method/mode (best-of)")
    p_bench.add_argument("--warmup", type=int, default=2)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--methods", default="",
                         help="comma-separated subset (default: all)")
    p_bench.add_argument("--buffer-sizes", default="",
                         help="comma-separated fusion buffer sizes in MB for "
                              "the bucketed S-SGD sweep (default: "
                              "0.25,1,4,16)")
    p_bench.add_argument("--no-buffer-sweep", action="store_true",
                         help="skip the fusion buffer-size sweep")
    p_bench.add_argument("--no-train-step", action="store_true",
                         help="skip the end-to-end train_step comparison")
    p_bench.add_argument("--output", default="BENCH_hotpath.json",
                         help="JSON report path ('' to skip writing; "
                              "--planner defaults to BENCH_planner.json)")
    p_bench.add_argument("--planner", action="store_true",
                         help="benchmark the planning service instead of "
                              "the training hot path (cold/warm q/s, hit "
                              "rate, p50/p99 latency)")
    p_bench.add_argument("--sim", action="store_true",
                         help="benchmark the scheduler-core event loop on "
                              "a large gated task DAG instead (asserts "
                              "determinism and near-linear gate-queue "
                              "scaling -> BENCH_sim.json)")
    p_bench.add_argument("--sim-tasks", type=int, default=20000,
                         help="[--sim] tasks in the benchmark DAG")
    p_bench.add_argument("--sim-streams", type=int, default=8,
                         help="[--sim] parallel resource streams")
    p_bench.add_argument("--queries", type=int, default=12,
                         help="[--planner] unique queries in the grid")
    p_bench.add_argument("--max-workers", type=int, default=4,
                         help="[--planner] service thread-pool size")
    p_bench.add_argument("--warm-lookups", type=int, default=5000,
                         help="[--planner] warm-cache lookups to time")
    p_bench.add_argument("--tune-buffer", action="store_true",
                         help="[--planner] include buffer autotuning in "
                              "each cold query")
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
