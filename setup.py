"""Legacy setup shim so `pip install -e .` works on offline/old toolchains."""
from setuptools import setup

setup()
