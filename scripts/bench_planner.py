#!/usr/bin/env python
"""Track the planning service: queries/sec over the memoized simulator.

Thin wrapper over ``python -m repro bench --planner`` (see
:mod:`repro.serve.bench`): answers a deterministic grid of capacity-
planning queries cold (empty cache — every query pays a simulator
sweep), then replays a deterministic warm stream against the sharded
result cache, and writes cold/warm throughput, the cache hit rate,
p50/p99 latency, and the byte-identity probe (cached payload == fresh
cache-less payload) to ``BENCH_planner.json``.

Usage:
    python scripts/bench_planner.py [--queries 12] [--warm-lookups 5000]
                                    [--output BENCH_planner.json]
Exit code 0 on success.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["bench", "--planner"] + sys.argv[1:]))
