#!/usr/bin/env python
"""Capture or check the golden simulator traces.

``capture`` runs every scenario in ``tests/golden_scenarios.py`` and
writes the per-task start/end times (IEEE-754 hex, so comparison is
bit-exact) to ``tests/data/golden_traces.json``. ``check`` re-runs the
scenarios and fails on any drift. The committed golden file was captured
from the engine *before* the ``repro.sched`` refactor; ``check`` passing
therefore proves the legacy ``Engine`` adapter reproduces the original
records bit-for-bit.

Usage::

    PYTHONPATH=src:tests python scripts/golden_trace.py capture
    PYTHONPATH=src:tests python scripts/golden_trace.py check
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests"))

from golden_scenarios import iter_scenarios, run_scenario  # noqa: E402

GOLDEN_FILE = os.path.join(REPO_ROOT, "tests", "data", "golden_traces.json")


def capture() -> None:
    traces = {}
    for name, tasks, engine_kwargs in iter_scenarios():
        traces[name] = run_scenario(tasks, engine_kwargs)
        print(f"captured {name}: {len(traces[name])} records")
    os.makedirs(os.path.dirname(GOLDEN_FILE), exist_ok=True)
    with open(GOLDEN_FILE, "w") as handle:
        json.dump(traces, handle, indent=0, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(traces)} scenarios to {GOLDEN_FILE}")


def check() -> int:
    with open(GOLDEN_FILE) as handle:
        golden = json.load(handle)
    failures = []
    seen = set()
    for name, tasks, engine_kwargs in iter_scenarios():
        seen.add(name)
        if name not in golden:
            failures.append(f"{name}: missing from golden file (re-capture?)")
            continue
        actual = run_scenario(tasks, engine_kwargs)
        expected = golden[name]
        if actual != expected:
            drift = [
                task_id
                for task_id in sorted(set(actual) | set(expected))
                if actual.get(task_id) != expected.get(task_id)
            ]
            failures.append(
                f"{name}: {len(drift)} drifted records, first: {drift[:3]}"
            )
        else:
            print(f"ok {name}: {len(actual)} records bit-identical")
    stale = sorted(set(golden) - seen)
    if stale:
        failures.append(f"stale golden scenarios: {stale}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=("capture", "check"))
    args = parser.parse_args()
    if args.mode == "capture":
        capture()
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
