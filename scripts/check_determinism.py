#!/usr/bin/env python
"""Verify fault-injected, parallel-worker, elastic-churn, bucketed,
gossip, process-worker, worker-crash-recovery, and topology-aware
training are bit-deterministic.

Eight checks, all diffing final weights bit-exactly:

1. the same fault-injected resilient training job run twice — identical
   FaultPlan, identical seeds — must produce identical weights (hidden
   wall-clock or unseeded randomness in the fault/recovery path shows up
   here);
2. the same clean training job run with sequential workers and with
   thread-parallel workers (``parallel_workers=True``) must produce
   identical weights (scheduling-order leakage in the parallel backprop
   path shows up here);
3. the same elastic-churn job — a rank ejected, readmitted, then a
   brand-new rank joined mid-run — replayed twice must produce identical
   weights (unseeded state in the admission protocol: warm-start, rng
   allocation, re-sharding, ring re-chunk, shows up here);
4. the same clean training job run monolithically (``buffer_bytes=None``)
   and through the bucketed WFBP reducer pipeline must produce identical
   weights for every bucket-capable method (drift between the per-bucket
   segmented collectives / staged compression and the fused path shows up
   here);
5. the same open-membership gossip run — adversarial peers (sign-flip +
   corrupt-payload) plus churn (departure, return, fresh join via store
   replay) — replayed twice must produce identical honest weights and the
   identical quarantine record (unseeded state in the publish path, the
   peer scorer, or the donor-less admission replay shows up here);
6. the same clean training job run sequentially and with process workers
   (``workers="process"``: child processes writing gradients into
   shared-memory arena slabs) must produce identical weights for every
   bucket-capable method — including a BatchNorm model and an elastic
   eject -> rejoin -> scale-up churn replay (cross-process rng-stream,
   shard, weight-broadcast, or BatchNorm-replay drift shows up here);
7. a supervised run whose worker child is SIGKILLed mid-step must
   recover bit-identically: under the ``"restart"`` policy the child is
   respawned, its sampling stream replayed, and the step retried — the
   weights must match the fault-free run exactly; under the ``"eject"``
   policy the rank is ejected at the boundary and later readmitted — the
   process-worker run must match a sequential twin simulating the same
   WorkerFault schedule, and both must log the same eject -> rejoin
   membership record (respawn-state, retry-replay, or stale-slab drift
   shows up here);
8. the same clean training job run over the flat ring and over the
   topology-aware hierarchical all-reduce
   (``DataParallelTrainer(..., topology=...)``) must produce identical
   weights for every bucket-capable method, monolithic and bucketed, on
   a degenerate single-node topology and a 2-node x 2-GPU one (any
   re-association of the reduction in the two-level schedule shows up
   here).

Usage:
    python scripts/check_determinism.py [--steps 6]
Exit code 0 when all eight PASS, 1 otherwise.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.faults import (
    FaultInjector,
    FaultPlan,
    ResilientProcessGroup,
    TransientFailure,
)
from repro.models import make_small_vgg
from repro.optim import SGD, make_aggregator
from repro.train import DataParallelTrainer, ResilienceConfig, make_cifar_like


def run_once(steps: int) -> np.ndarray:
    plan = FaultPlan(
        seed=7,
        drop_rate=0.05,
        corrupt_rate=0.05,
        corrupt_mode="bitflip",
        straggler_rate=0.1,
        transient=(TransientFailure(rank=0, call_index=3, attempts=1),),
    )
    train_data, test_data = make_cifar_like(num_train=256, num_test=64, seed=3)
    model = make_small_vgg(base_width=4, rng=np.random.default_rng(5))
    group = ResilientProcessGroup(2, injector=FaultInjector(plan))
    aggregator = make_aggregator("acpsgd", group, rank=2)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=13,
        resilience=ResilienceConfig(),
    )
    trainer.run(epochs=1, steps_per_epoch=steps, method_label="acpsgd")
    return model.state_vector()


def run_clean(steps: int, parallel_workers: bool) -> np.ndarray:
    """A clean (no-fault) run, sequential or thread-parallel workers."""
    from repro.comm import ProcessGroup

    train_data, test_data = make_cifar_like(num_train=256, num_test=64, seed=3)
    model = make_small_vgg(base_width=4, rng=np.random.default_rng(5))
    aggregator = make_aggregator("powersgd", ProcessGroup(4), rank=2)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=13,
        parallel_workers=parallel_workers,
    )
    trainer.run(epochs=1, steps_per_epoch=steps, method_label="powersgd")
    return model.state_vector()


def run_churn(steps: int, workers: str = "seq") -> np.ndarray:
    """An elastic run: eject -> rejoin -> scale-up, all within ``steps``."""
    from repro.elastic import MembershipController
    from repro.faults import Join, PermanentFailure, Recovery

    plan = FaultPlan(
        seed=7,
        permanent=(PermanentFailure(rank=2, call_index=2),),
        recoveries=(Recovery(rank=2, call_index=5),),
        joins=(Join(call_index=8),),
    )
    train_data, test_data = make_cifar_like(num_train=256, num_test=64, seed=3)
    model = make_small_vgg(base_width=4, rng=np.random.default_rng(5))
    group = ResilientProcessGroup(3, injector=FaultInjector(plan))
    membership = MembershipController(group)
    aggregator = make_aggregator("acpsgd", group, rank=2)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=13,
        resilience=ResilienceConfig(), membership=membership,
        workers=workers,
    )
    with trainer:
        trainer.run(epochs=1, steps_per_epoch=steps, method_label="acpsgd")
    changes = [change.kind for change in membership.log.changes]
    if changes != ["eject", "rejoin", "join"]:
        raise RuntimeError(
            f"churn schedule did not play out as planned: {changes}"
        )
    return model.state_vector()


def run_bucketed(
    steps: int, method: str, buffer_bytes, workers: str = "seq",
    world: int = 2, topology=None,
) -> np.ndarray:
    """A clean run: monolithic (buffer_bytes=None) or bucketed, any backend,
    flat ring or (with ``topology``) hierarchical two-level all-reduce."""
    from repro.comm import ProcessGroup

    train_data, test_data = make_cifar_like(num_train=256, num_test=64, seed=3)
    model = make_small_vgg(base_width=4, rng=np.random.default_rng(5))
    kwargs = {"rank": 2} if method in ("powersgd", "acpsgd") else {}
    aggregator = make_aggregator(method, ProcessGroup(world), **kwargs)
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9), aggregator,
        train_data, test_data, batch_size_per_worker=8, seed=13,
        buffer_bytes=buffer_bytes, workers=workers, topology=topology,
    )
    with trainer:
        trainer.run(epochs=1, steps_per_epoch=steps, method_label=method)
    return model.state_vector()


def run_gossip(windows: int):
    """A seeded gossip run with attackers and churn; returns
    (honest weights, quarantine record)."""
    from repro.faults import Join, PeerFault, PermanentFailure, Recovery
    from repro.gossip import GossipCluster, GossipConfig
    from repro.models import make_mlp
    from repro.train import ArrayDataset

    rng = np.random.default_rng(3)
    weights = rng.normal(size=(6, 3))
    inputs = rng.normal(size=(320, 6))
    labels = (inputs @ weights).argmax(axis=1)
    train_data = ArrayDataset(inputs[:256], labels[:256])
    test_data = ArrayDataset(inputs[256:], labels[256:])

    def factory():
        return make_mlp(6, 16, 3, rng=np.random.default_rng(5))

    plan = FaultPlan(
        seed=7,
        peer_faults=(
            PeerFault("sign-flip", rank=4, start_window=0),
            PeerFault("corrupt-payload", rank=3, start_window=1),
        ),
        permanent=(PermanentFailure(rank=1, call_index=3),),
        recoveries=(Recovery(rank=1, call_index=6),),
        joins=(Join(call_index=5),),
    )
    cluster = GossipCluster(
        factory, train_data, test_data,
        GossipConfig(local_steps=2, lr=0.1, compression_ratio=0.2),
        plan=plan, peers=5, seed=13,
    )
    report = cluster.run(windows)
    return cluster.honest_peers()[0].state_vector(), dict(report.quarantined)


def run_supervised(steps: int, workers: str, on_failure, membership_on: bool):
    """A supervised run with a worker child SIGKILLed mid-step (rank 1,
    step 1). Returns (weights, membership log kinds or None)."""
    from repro.elastic import MembershipController
    from repro.faults import SupervisionPolicy, WorkerFault

    plan = (
        FaultPlan(seed=7, worker_faults=(WorkerFault("crash", rank=1, step=1),))
        if on_failure is not None else FaultPlan(seed=7)
    )
    train_data, test_data = make_cifar_like(num_train=256, num_test=64, seed=3)
    model = make_small_vgg(base_width=4, rng=np.random.default_rng(5))
    group = ResilientProcessGroup(2, injector=FaultInjector(plan))
    membership = MembershipController(group) if membership_on else None
    policy = (
        SupervisionPolicy(on_failure=on_failure, respawn_delay_steps=2)
        if on_failure is not None else None
    )
    trainer = DataParallelTrainer(
        model, SGD(model, lr=0.05, momentum=0.9),
        make_aggregator("ssgd", group),
        train_data, test_data, batch_size_per_worker=8, seed=13,
        workers=workers, membership=membership, supervision=policy,
        worker_step_timeout=30.0,
    )
    with trainer:
        trainer.run(epochs=1, steps_per_epoch=steps, method_label="ssgd")
    kinds = (
        [change.kind for change in membership.log.changes]
        if membership_on else None
    )
    return model.state_vector(), kinds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=6)
    args = parser.parse_args()

    failures = 0
    first = run_once(args.steps)
    second = run_once(args.steps)
    if np.array_equal(first, second):
        print(f"PASS: two fault-injected runs of {args.steps} steps produced "
              "bit-identical weights")
    else:
        diff = float(np.abs(first - second).max())
        print(f"FAIL: weight mismatch between identical runs "
              f"(max |diff| = {diff:g})")
        failures += 1

    sequential = run_clean(args.steps, parallel_workers=False)
    parallel = run_clean(args.steps, parallel_workers=True)
    if np.array_equal(sequential, parallel):
        print(f"PASS: sequential and parallel-worker runs of {args.steps} "
              "steps produced bit-identical weights")
    else:
        diff = float(np.abs(sequential - parallel).max())
        print(f"FAIL: parallel-worker weights diverge from sequential "
              f"(max |diff| = {diff:g})")
        failures += 1

    churn_steps = max(args.steps, 6)  # the schedule needs room to play out
    churn_first = run_churn(churn_steps)
    churn_second = run_churn(churn_steps)
    if np.array_equal(churn_first, churn_second):
        print(f"PASS: two elastic-churn runs (eject -> rejoin -> scale-up, "
              f"{churn_steps} steps) produced bit-identical weights")
    else:
        diff = float(np.abs(churn_first - churn_second).max())
        print(f"FAIL: elastic-churn replay diverged "
              f"(max |diff| = {diff:g})")
        failures += 1

    bucketed_methods = ("ssgd", "signsgd", "topk", "powersgd", "acpsgd")
    mismatched = []
    sequential_monolithic = {}
    for method in bucketed_methods:
        monolithic = run_bucketed(args.steps, method, buffer_bytes=None)
        sequential_monolithic[method] = monolithic
        bucketed = run_bucketed(args.steps, method, buffer_bytes=64 * 1024)
        if not np.array_equal(monolithic, bucketed):
            diff = float(np.abs(monolithic - bucketed).max())
            mismatched.append(f"{method} (max |diff| = {diff:g})")
    if not mismatched:
        print(f"PASS: bucketed (WFBP reducer) and monolithic runs of "
              f"{args.steps} steps produced bit-identical weights for "
              f"{', '.join(bucketed_methods)}")
    else:
        print(f"FAIL: bucketed weights diverge from monolithic for "
              f"{'; '.join(mismatched)}")
        failures += 1

    gossip_windows = max(args.steps, 8)  # attackers + churn need room
    gossip_first, quarantine_first = run_gossip(gossip_windows)
    gossip_second, quarantine_second = run_gossip(gossip_windows)
    if (np.array_equal(gossip_first, gossip_second)
            and quarantine_first == quarantine_second
            and set(quarantine_first) == {"peer-003", "peer-004"}):
        print(f"PASS: two adversarial gossip runs ({gossip_windows} windows, "
              "sign-flip + corrupt-payload + churn) produced bit-identical "
              "honest weights and quarantine records")
    else:
        diff = float(np.abs(gossip_first - gossip_second).max())
        print(f"FAIL: gossip replay diverged (max weight |diff| = {diff:g}; "
              f"quarantined {quarantine_first} vs {quarantine_second})")
        failures += 1

    # Check 6: process workers (shared-memory slabs) vs the sequential
    # path — per method (reusing check 4's sequential baselines; the
    # small-VGG model exercises BatchNorm stat replay across processes)
    # and through the elastic churn schedule (reusing check 3's
    # sequential-churn baseline).
    process_mismatched = []
    for method in bucketed_methods:
        process = run_bucketed(
            args.steps, method, buffer_bytes=None, workers="process"
        )
        baseline = sequential_monolithic[method]
        if not np.array_equal(baseline, process):
            diff = float(np.abs(baseline - process).max())
            process_mismatched.append(f"{method} (max |diff| = {diff:g})")
    churn_process = run_churn(churn_steps, workers="process")
    if not np.array_equal(churn_first, churn_process):
        diff = float(np.abs(churn_first - churn_process).max())
        process_mismatched.append(f"elastic churn (max |diff| = {diff:g})")
    if not process_mismatched:
        print(f"PASS: process-worker runs of {args.steps} steps (incl. "
              f"BatchNorm replay and an eject -> rejoin -> scale-up churn "
              f"replay over {churn_steps} steps) are bit-identical to "
              f"sequential for {', '.join(bucketed_methods)}")
    else:
        print(f"FAIL: process-worker weights diverge from sequential for "
              f"{'; '.join(process_mismatched)}")
        failures += 1

    # Check 7: a worker child SIGKILLed mid-step (crash WorkerFault at
    # rank 1, step 1) must recover bit-identically under both
    # supervision rungs.
    supervision_failed = []
    clean, _ = run_supervised(args.steps, "process", None, False)
    restarted, _ = run_supervised(args.steps, "process", "restart", False)
    if not np.array_equal(clean, restarted):
        diff = float(np.abs(clean - restarted).max())
        supervision_failed.append(
            f"restart diverged from fault-free (max |diff| = {diff:g})"
        )
    eject_steps = max(args.steps, 5)  # eject + scheduled rejoin need room
    ejected, eject_log = run_supervised(eject_steps, "process", "eject", True)
    twin, twin_log = run_supervised(eject_steps, "seq", "eject", True)
    if not np.array_equal(ejected, twin):
        diff = float(np.abs(ejected - twin).max())
        supervision_failed.append(
            f"eject diverged from sequential twin (max |diff| = {diff:g})"
        )
    if not eject_log == twin_log == ["eject", "rejoin"]:
        supervision_failed.append(
            f"eject -> rejoin record wrong: {eject_log} vs {twin_log}"
        )
    if not supervision_failed:
        print(f"PASS: worker-crash recovery over {args.steps} steps (child "
              "SIGKILLed mid-step) is bit-identical — restart matches the "
              "fault-free run, eject -> respawn -> rejoin matches the "
              "sequential twin")
    else:
        print(f"FAIL: worker-crash recovery drifted: "
              f"{'; '.join(supervision_failed)}")
        failures += 1

    # Check 8: the topology-aware hierarchical all-reduce must be
    # bit-identical to the flat ring — monolithic and bucketed — for every
    # bucket-capable method, on a single 2-GPU node (degenerate hierarchy)
    # and on 2 nodes x 2 GPUs (real two-level schedule). The canonical-fold
    # contract of repro.comm.hierarchical is what this enforces.
    from repro.comm import ClusterTopology
    from repro.comm.cost_model import ETHERNET_10G
    from repro.comm.topology import NVLINK2

    topology_mismatched = []
    for world, nodes in ((2, 1), (4, 2)):
        topology = ClusterTopology(
            num_nodes=nodes, gpus_per_node=world // nodes,
            intra_link=NVLINK2, inter_link=ETHERNET_10G,
        )
        for method in bucketed_methods:
            if world == 2:
                flat = sequential_monolithic[method]
            else:
                flat = run_bucketed(
                    args.steps, method, buffer_bytes=None, world=world
                )
            for buffer_bytes, label in ((None, "monolithic"),
                                        (64 * 1024, "bucketed")):
                hier = run_bucketed(
                    args.steps, method, buffer_bytes=buffer_bytes,
                    world=world, topology=topology,
                )
                if not np.array_equal(flat, hier):
                    diff = float(np.abs(flat - hier).max())
                    topology_mismatched.append(
                        f"{method} {label} {nodes}x{world // nodes} "
                        f"(max |diff| = {diff:g})"
                    )
    if not topology_mismatched:
        print(f"PASS: hierarchical (topology-aware) all-reduce runs of "
              f"{args.steps} steps are bit-identical to the flat ring for "
              f"{', '.join(bucketed_methods)} (monolithic + bucketed, "
              "1x2 and 2x2 topologies)")
    else:
        print(f"FAIL: hierarchical all-reduce diverges from the flat ring "
              f"for {'; '.join(topology_mismatched)}")
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
