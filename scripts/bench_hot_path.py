#!/usr/bin/env python
"""Track the training hot path: aggregation-step time, legacy vs arena.

Thin wrapper over ``python -m repro bench`` (see
:mod:`repro.perf.bench`): times S-SGD and every compressed aggregator's
step at world_size 4 on a VGG-style model, once with legacy copying
gradients (the pre-arena code path, reconstructed in the same run) and
once with zero-copy arena slabs, and writes the comparison — including
the fused-allocation counters, an end-to-end sequential-vs-parallel
``train_step`` row, and the per-backend worker-mode comparison
(``--workers seq,thread,process``: where the GIL costs each method) —
to ``BENCH_hotpath.json``.

Usage:
    python scripts/bench_hot_path.py [--world-size 4] [--base-width 32]
                                     [--workers seq,thread,process]
                                     [--output BENCH_hotpath.json]
Exit code 0 on success.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["bench"] + sys.argv[1:]))
